//! # gals-bench
//!
//! The benchmark harness regenerating every table and figure of the paper.
//! Each `src/bin/*.rs` binary reproduces one table/figure (see DESIGN.md §4
//! and EXPERIMENTS.md); this library holds the shared runners and table
//! formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gals_clocks::Domain;
use gals_core::{simulate, DvfsPlan, ProcessorConfig, SimLimits, SimReport};
use gals_workload::{generate, Benchmark};

/// Committed-instruction budget per run. Large enough for steady-state
/// statistics, small enough that the full suite of experiments runs in
/// minutes.
pub const RUN_INSTS: u64 = 120_000;

/// Default workload seed (the "input set" of the synthetic benchmarks).
pub const WORKLOAD_SEED: u64 = 0x5EC9_5201;

/// Default phase seed for GALS local clocks.
pub const PHASE_SEED: u64 = 2002;

/// Runs one benchmark on the synchronous base machine.
pub fn run_base(bench: Benchmark, insts: u64) -> SimReport {
    let program = generate(bench, WORKLOAD_SEED);
    simulate(&program, ProcessorConfig::synchronous_1ghz(), SimLimits::insts(insts))
}

/// Runs one benchmark on the GALS machine (equal 1 GHz clocks, random
/// phases).
pub fn run_gals(bench: Benchmark, insts: u64) -> SimReport {
    let program = generate(bench, WORKLOAD_SEED);
    simulate(&program, ProcessorConfig::gals_equal_1ghz(PHASE_SEED), SimLimits::insts(insts))
}

/// Runs one benchmark on the pausible-clock ablation machine (equal 1 GHz
/// nominal clocks and the same phases as [`run_gals`], 300 ps handshake).
pub fn run_pausible(bench: Benchmark, insts: u64) -> SimReport {
    let program = generate(bench, WORKLOAD_SEED);
    simulate(&program, ProcessorConfig::pausible_equal_1ghz(PHASE_SEED), SimLimits::insts(insts))
}

/// The committed-instruction budget from the binary's first CLI argument,
/// falling back to `default` (typically [`RUN_INSTS`]) when no argument is
/// given. Lets CI smoke-run the figure binaries on a tiny budget
/// (`cargo run --release --bin <bin> -- 2000`).
///
/// # Panics
///
/// Panics on an unparseable argument — a typo in a smoke budget must not
/// silently degrade into a full-budget run.
pub fn budget_from_args(default: u64) -> u64 {
    match std::env::args().nth(1) {
        None => default,
        Some(arg) => arg
            .parse()
            .unwrap_or_else(|_| panic!("invalid instruction-budget argument {arg:?}")),
    }
}

/// Runs one benchmark on a GALS machine with a DVFS plan applied.
pub fn run_gals_dvfs(bench: Benchmark, insts: u64, plan: DvfsPlan) -> SimReport {
    let program = generate(bench, WORKLOAD_SEED);
    let cfg = ProcessorConfig::gals_equal_1ghz(PHASE_SEED).with_dvfs(plan);
    simulate(&program, cfg, SimLimits::insts(insts))
}

/// Runs one benchmark on the base machine uniformly slowed (and voltage
/// scaled) by `factor` — the paper's "ideal" comparison column.
pub fn run_base_scaled(bench: Benchmark, insts: u64, factor: f64) -> SimReport {
    let program = generate(bench, WORKLOAD_SEED);
    let mut plan = DvfsPlan::nominal();
    plan.slowdown = [factor; 5];
    let cfg = ProcessorConfig::synchronous_1ghz().with_dvfs(plan);
    simulate(&program, cfg, SimLimits::insts(insts))
}

/// A DVFS plan from per-domain slowdown factors in paper order
/// (fetch, decode, int, fp, mem).
pub fn plan(slowdowns: [f64; 5]) -> DvfsPlan {
    let mut p = DvfsPlan::nominal();
    for d in Domain::ALL {
        p = p.with_slowdown(d, slowdowns[d.index()]);
    }
    p
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Geometric mean of a slice.
///
/// # Panics
///
/// Panics if `xs` is empty or contains non-positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    assert!(xs.iter().all(|&x| x > 0.0), "geomean needs positive values");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Arithmetic mean of a slice.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn runners_execute_on_a_small_budget() {
        // Smoke-guard for every figure binary's plumbing.
        let base = run_base(Benchmark::Adpcm, 2_000);
        let gals = run_gals(Benchmark::Adpcm, 2_000);
        assert_eq!(base.committed, 2_000);
        assert_eq!(gals.committed, 2_000);
        let dvfs = run_gals_dvfs(Benchmark::Adpcm, 2_000, plan([1.0, 1.0, 1.0, 2.0, 1.0]));
        assert_eq!(dvfs.committed, 2_000);
        let ideal = run_base_scaled(Benchmark::Adpcm, 2_000, 1.2);
        assert!((ideal.exec_time.as_fs() as f64 / base.exec_time.as_fs() as f64 - 1.2).abs() < 0.01);
    }

    #[test]
    fn plan_maps_paper_order() {
        let p = plan([1.1, 1.0, 1.0, 1.5, 1.2]);
        assert_eq!(p.slowdown[Domain::Fetch.index()], 1.1);
        assert_eq!(p.slowdown[Domain::FpCluster.index()], 1.5);
        assert_eq!(p.slowdown[Domain::MemCluster.index()], 1.2);
    }
}
