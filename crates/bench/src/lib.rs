//! # gals-bench
//!
//! The benchmark harness regenerating every table and figure of the paper.
//! Each `src/bin/*.rs` binary reproduces one table/figure (see DESIGN.md §4
//! and EXPERIMENTS.md); this library holds the shared runners, the common
//! CLI ([`BenchCli`]) and table formatting.
//!
//! ## The scenario-sweep binary
//!
//! `cargo run --release --bin sweep -- [--budget N] [--threads N] [--out PATH]
//! [--matrix FILE] [--journal PATH [--resume]] [--retries N]
//! [--run-timeout-ms N] [--cache DIR [--cache-cap N]]`
//! runs the default cartesian experiment matrix of the `gals-sweep` crate
//! — or, with `--matrix FILE`, a user-defined matrix loaded from JSON
//! (benchmark × clocking mode × pausible handshake duration × DVFS point ×
//! phase seed — see [`gals_sweep::SweepMatrix`] for the matrix format and
//! the `gals-sweep` crate docs for the full JSON schema) and writes the
//! schema-versioned report to `SWEEP_results.json`. The report is
//! bit-identical for every `--threads` value.
//!
//! Runs are fault-isolated: a matrix point that panics, deadlocks, or
//! exceeds the per-run wall-clock deadline is recorded with a structured
//! `status` while every other point completes normally; any failure turns
//! the exit code into [`exit_code::FAILED_RUNS`]. `--journal PATH` keeps a
//! write-ahead record of finished runs and `--resume` re-runs only the
//! failed/missing ones. A `--features chaos` build adds deterministic
//! fault injection (`--chaos-panic`/`--chaos-wedge`/`--chaos-stall`) for
//! smoke-testing the whole failure path.
//!
//! `--cache DIR` arms the content-addressed result cache (points already
//! simulated under the same `RunKey` are served from disk), and
//! `sweep --serve ADDR` turns the binary into a resident service
//! answering newline-delimited JSON sweep requests over a local socket —
//! concurrently, with per-request deadlines, in-band cancellation and a
//! graceful drain on shutdown (`--max-clients`/`--max-pending-runs`
//! bound admission). `sweep --submit ADDR --matrix FILE` is the matching
//! thin client: it frames the matrix as one request, streams the
//! response to stdout or `--out`, and retries with capped exponential
//! backoff on connect failure or a mid-stream disconnect (see the
//! [`submit`] module). See `gals_sweep::SweepServer` and
//! docs/SWEEP_FORMAT.md §"Cache & serve" for the protocol.
//!
//! ## Common CLI
//!
//! Every experiment binary accepts `--budget N` (or a bare positional `N`,
//! the historical smoke form) to override its committed-instruction budget;
//! binaries that write files accept `--out PATH`; parallel binaries accept
//! `--threads N`; `bench_throughput` additionally accepts
//! `--baseline PATH --tolerance F` for the CI perf-regression gate; the
//! `sweep` binary additionally accepts the fault-tolerance options above
//! and `--check FILE` (static pre-flight analysis of a matrix file, no
//! simulation). Exit codes are uniform across binaries — the full
//! contract lives on [`exit_code`]. JSON artifacts are written
//! atomically ([`write_atomic`]): tmp file + rename, never a torn report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

pub mod submit;

use gals_clocks::Domain;
use gals_core::{simulate, DvfsPlan, ProcessorConfig, SimLimits, SimReport};
use gals_workload::{generate, Benchmark};

/// Committed-instruction budget per run. Large enough for steady-state
/// statistics, small enough that the full suite of experiments runs in
/// minutes.
pub const RUN_INSTS: u64 = 120_000;

/// Default workload seed (the "input set" of the synthetic benchmarks).
pub const WORKLOAD_SEED: u64 = 0x5EC9_5201;

/// Default phase seed for GALS local clocks.
pub const PHASE_SEED: u64 = 2002;

/// Runs one benchmark on the synchronous base machine.
pub fn run_base(bench: Benchmark, insts: u64) -> SimReport {
    let program = generate(bench, WORKLOAD_SEED);
    simulate(
        &program,
        ProcessorConfig::synchronous_1ghz(),
        SimLimits::insts(insts),
    )
    .expect("simulation failed")
}

/// Runs one benchmark on the GALS machine (equal 1 GHz clocks, random
/// phases).
pub fn run_gals(bench: Benchmark, insts: u64) -> SimReport {
    let program = generate(bench, WORKLOAD_SEED);
    simulate(
        &program,
        ProcessorConfig::gals_equal_1ghz(PHASE_SEED),
        SimLimits::insts(insts),
    )
    .expect("simulation failed")
}

/// Runs one benchmark on the pausible-clock ablation machine (equal 1 GHz
/// nominal clocks and the same phases as [`run_gals`], 300 ps handshake).
pub fn run_pausible(bench: Benchmark, insts: u64) -> SimReport {
    let program = generate(bench, WORKLOAD_SEED);
    simulate(
        &program,
        ProcessorConfig::pausible_equal_1ghz(PHASE_SEED),
        SimLimits::insts(insts),
    )
    .expect("simulation failed")
}

/// Runs one benchmark on the *rendezvous* pausible machine: the same
/// clocks, phases and handshake as [`run_pausible`], but every
/// inter-domain crossing is a single-entry rendezvous port (the capacity
/// cost of unbuffered handshakes is charged on top of the timing cost).
pub fn run_rendezvous(bench: Benchmark, insts: u64) -> SimReport {
    let program = generate(bench, WORKLOAD_SEED);
    simulate(
        &program,
        ProcessorConfig::pausible_rendezvous_1ghz(PHASE_SEED),
        SimLimits::insts(insts),
    )
    .expect("simulation failed")
}

/// Uniform process exit codes of the experiment binaries — the one place
/// the full 0/1/2/3/4 contract is defined (mirrored prose in
/// `docs/SWEEP_FORMAT.md`):
///
/// | code | meaning |
/// |------|---------|
/// | 0    | success — everything ran and every gate passed |
/// | 1    | a gated comparison failed (CI perf-regression gate) |
/// | 2    | bad command line — usage printed to stderr |
/// | 3    | sweep finished but ≥1 matrix point failed at *runtime* |
/// | 4    | static analysis found a blocking issue — nothing was run |
///
/// 2 vs 4 matters: a usage error (2) means the invocation itself is
/// malformed (unknown flag, unreadable matrix file); an analysis failure
/// (4) means the invocation was fine but `--check` statically rejected
/// the *configurations* — the per-point finding table on stdout says why.
pub mod exit_code {
    /// Success.
    pub const OK: i32 = 0;
    /// A gated comparison failed (e.g. the CI perf-regression gate).
    pub const REGRESSION: i32 = 1;
    /// Bad command line — printed usage to stderr.
    pub const USAGE: i32 = 2;
    /// The sweep completed but one or more matrix points failed (panicked,
    /// timed out, or deadlocked); the report was still written and records
    /// every failure's status, so `--resume` can re-run just those points.
    pub const FAILED_RUNS: i32 = 3;
    /// Static pre-flight analysis (`sweep --check FILE`) flagged at least
    /// one matrix point with a warning-or-worse finding; no simulation
    /// was performed. The finding table (one `GA…` code per line) was
    /// printed to stdout.
    pub const ANALYSIS: i32 = 4;
}

/// Writes `contents` to `path` atomically: the bytes land in a `.tmp`
/// sibling first and are `rename`d into place, so a crash (or a concurrent
/// reader) can never observe a half-written artifact. Every JSON artifact
/// the experiment binaries produce goes through here — in particular the
/// checked-in `BENCH_throughput.json` baseline, which the CI perf gate
/// reads back.
///
/// # Errors
///
/// Any I/O error from the write or the rename; the `.tmp` file is left
/// behind on a failed rename for post-mortem inspection.
pub fn write_atomic(path: &std::path::Path, contents: &str) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// The common command line of the experiment binaries: an instruction
/// budget (`--budget N` or the historical bare positional `N`), an output
/// path, a worker-thread count, and the perf-gate options. Individual
/// binaries use the subset they document and ignore the rest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchCli {
    /// Committed-instruction budget override (`--budget N` or bare `N`).
    pub budget: Option<u64>,
    /// Output file path (`--out PATH`).
    pub out: Option<PathBuf>,
    /// Worker-thread count (`--threads N`).
    pub threads: Option<usize>,
    /// Baseline JSON to gate against (`--baseline PATH`).
    pub baseline: Option<PathBuf>,
    /// User-defined sweep-matrix file (`--matrix PATH`; the `sweep`
    /// binary — see `gals_sweep::SweepMatrix::from_json` for the format).
    pub matrix: Option<PathBuf>,
    /// Statically analyze a matrix file instead of running it
    /// (`--check PATH`; the `sweep` binary). Exits with
    /// [`exit_code::ANALYSIS`] on any warning-or-worse finding.
    pub check: Option<PathBuf>,
    /// Relative regression tolerance for the gate (`--tolerance F`,
    /// default 0.15 = fail beyond a 15% mean regression).
    pub tolerance: f64,
    /// Write-ahead journal path for resumable sweeps (`--journal PATH`;
    /// the `sweep` binary).
    pub journal: Option<PathBuf>,
    /// Resume from the journal instead of starting clean (`--resume`;
    /// requires `--journal`).
    pub resume: bool,
    /// Re-run attempts per failed matrix point (`--retries N`; overrides
    /// the matrix file's `retries`).
    pub retries: Option<u32>,
    /// Per-run wall-clock deadline in milliseconds (`--run-timeout-ms N`;
    /// overrides the matrix file's `run_timeout_ms`).
    pub run_timeout_ms: Option<u64>,
    /// Matrix indices to panic by fault injection (`--chaos-panic N[,N..]`,
    /// repeatable; needs a `--features chaos` build).
    pub chaos_panic: Vec<usize>,
    /// Matrix indices to wedge into a deadlock (`--chaos-wedge N[,N..]`,
    /// repeatable; needs a `--features chaos` build).
    pub chaos_wedge: Vec<usize>,
    /// `(matrix index, stall milliseconds)` pairs to stall past the run
    /// watchdog (`--chaos-stall INDEX:MS`, repeatable; needs a
    /// `--features chaos` build).
    pub chaos_stall: Vec<(usize, u64)>,
    /// Content-addressed result-cache directory (`--cache DIR`; the
    /// `sweep` binary — see `gals_sweep::ResultCache`).
    pub cache: Option<PathBuf>,
    /// Bound on the number of cached blobs (`--cache-cap N`; needs
    /// `--cache`).
    pub cache_cap: Option<usize>,
    /// Serve newline-delimited JSON sweep requests on this address
    /// instead of running one sweep (`--serve ADDR`; the `sweep` binary —
    /// see `gals_sweep::SweepServer` for the protocol).
    pub serve: Option<String>,
    /// Submit the `--matrix` file to a running server instead of
    /// simulating locally (`--submit ADDR`; the `sweep` binary — see the
    /// [`submit`] module for the retry contract).
    pub submit: Option<String>,
    /// Total connection attempts for `--submit` before giving up
    /// (`--submit-retries N`, default 5, minimum 1).
    pub submit_retries: Option<u32>,
    /// Per-request wall-clock deadline in milliseconds, sent with the
    /// submitted sweep (`--deadline-ms N`; needs `--submit`). The server
    /// cancels the request when it expires.
    pub deadline_ms: Option<u64>,
    /// Bound on concurrently served connections (`--max-clients N`;
    /// needs `--serve`). Excess clients are shed with a retryable error.
    pub max_clients: Option<usize>,
    /// Bound on the server worker pool's queued+running runs
    /// (`--max-pending-runs N`; needs `--serve`). Oversized sweeps are
    /// refused with a retryable error.
    pub max_pending_runs: Option<usize>,
    /// Server-side fault injection: hard-close a sweep response after
    /// this many streamed `run` lines (`--chaos-drop-after N`; needs
    /// `--serve` and a `--features chaos` build).
    pub chaos_drop_after: Option<usize>,
    /// How many response streams the injected drop sabotages before
    /// disarming (`--chaos-drop-times N`, default 1; needs
    /// `--chaos-drop-after`).
    pub chaos_drop_times: Option<usize>,
}

impl BenchCli {
    /// Default gate tolerance: fail on a >15% mean regression.
    pub const DEFAULT_TOLERANCE: f64 = 0.15;

    /// Parses an argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on an unknown flag, a missing
    /// value, or an unparseable number — the callers route it to stderr
    /// and exit with [`exit_code::USAGE`].
    pub fn parse_from<I>(args: I) -> Result<Self, String>
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        let mut cli = BenchCli {
            tolerance: Self::DEFAULT_TOLERANCE,
            ..BenchCli::default()
        };
        let mut it = args.into_iter().map(Into::into);
        while let Some(arg) = it.next() {
            let mut value_of =
                |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
            match arg.as_str() {
                "--budget" => {
                    let v = value_of("--budget")?;
                    cli.budget = Some(parse_num(&v, "--budget")?);
                }
                "--out" => cli.out = Some(PathBuf::from(value_of("--out")?)),
                "--threads" => {
                    let v = value_of("--threads")?;
                    let n: usize = parse_num(&v, "--threads")?;
                    if n == 0 {
                        return Err("--threads must be at least 1".into());
                    }
                    cli.threads = Some(n);
                }
                "--baseline" => cli.baseline = Some(PathBuf::from(value_of("--baseline")?)),
                "--matrix" => cli.matrix = Some(PathBuf::from(value_of("--matrix")?)),
                "--check" => cli.check = Some(PathBuf::from(value_of("--check")?)),
                "--journal" => cli.journal = Some(PathBuf::from(value_of("--journal")?)),
                "--resume" => cli.resume = true,
                "--retries" => {
                    let v = value_of("--retries")?;
                    cli.retries = Some(parse_num(&v, "--retries")?);
                }
                "--run-timeout-ms" => {
                    let v = value_of("--run-timeout-ms")?;
                    let ms: u64 = parse_num(&v, "--run-timeout-ms")?;
                    if ms == 0 {
                        return Err("--run-timeout-ms must be at least 1".into());
                    }
                    cli.run_timeout_ms = Some(ms);
                }
                "--cache" => cli.cache = Some(PathBuf::from(value_of("--cache")?)),
                "--cache-cap" => {
                    let v = value_of("--cache-cap")?;
                    let n: usize = parse_num(&v, "--cache-cap")?;
                    if n == 0 {
                        return Err("--cache-cap must be at least 1".into());
                    }
                    cli.cache_cap = Some(n);
                }
                "--serve" => cli.serve = Some(value_of("--serve")?),
                "--submit" => cli.submit = Some(value_of("--submit")?),
                "--submit-retries" => {
                    let v = value_of("--submit-retries")?;
                    let n: u32 = parse_num(&v, "--submit-retries")?;
                    if n == 0 {
                        return Err("--submit-retries must be at least 1".into());
                    }
                    cli.submit_retries = Some(n);
                }
                "--deadline-ms" => {
                    let v = value_of("--deadline-ms")?;
                    cli.deadline_ms = Some(parse_num(&v, "--deadline-ms")?);
                }
                "--max-clients" => {
                    let v = value_of("--max-clients")?;
                    let n: usize = parse_num(&v, "--max-clients")?;
                    if n == 0 {
                        return Err("--max-clients must be at least 1".into());
                    }
                    cli.max_clients = Some(n);
                }
                "--max-pending-runs" => {
                    let v = value_of("--max-pending-runs")?;
                    let n: usize = parse_num(&v, "--max-pending-runs")?;
                    if n == 0 {
                        return Err("--max-pending-runs must be at least 1".into());
                    }
                    cli.max_pending_runs = Some(n);
                }
                "--chaos-drop-after" => {
                    let v = value_of("--chaos-drop-after")?;
                    cli.chaos_drop_after = Some(parse_num(&v, "--chaos-drop-after")?);
                }
                "--chaos-drop-times" => {
                    let v = value_of("--chaos-drop-times")?;
                    let n: usize = parse_num(&v, "--chaos-drop-times")?;
                    if n == 0 {
                        return Err("--chaos-drop-times must be at least 1".into());
                    }
                    cli.chaos_drop_times = Some(n);
                }
                "--chaos-panic" => {
                    let v = value_of("--chaos-panic")?;
                    parse_index_list(&v, "--chaos-panic", &mut cli.chaos_panic)?;
                }
                "--chaos-wedge" => {
                    let v = value_of("--chaos-wedge")?;
                    parse_index_list(&v, "--chaos-wedge", &mut cli.chaos_wedge)?;
                }
                "--chaos-stall" => {
                    let v = value_of("--chaos-stall")?;
                    let (index, ms) = v
                        .split_once(':')
                        .ok_or_else(|| format!("--chaos-stall wants INDEX:MS, got {v:?}"))?;
                    cli.chaos_stall.push((
                        parse_num(index, "--chaos-stall index")?,
                        parse_num(ms, "--chaos-stall milliseconds")?,
                    ));
                }
                "--tolerance" => {
                    let v = value_of("--tolerance")?;
                    let t: f64 = v
                        .parse()
                        .map_err(|_| format!("invalid --tolerance value {v:?}"))?;
                    if !(0.0..1.0).contains(&t) {
                        return Err(format!("--tolerance {t} outside [0, 1)"));
                    }
                    cli.tolerance = t;
                }
                other if !other.starts_with('-') && cli.budget.is_none() => {
                    cli.budget = Some(parse_num(other, "instruction budget")?);
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(cli)
    }

    /// Parses the process arguments; on error prints the message and
    /// `usage` to stderr and exits with [`exit_code::USAGE`].
    pub fn parse_or_exit(usage: &str) -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(cli) => cli,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!("usage: {usage}");
                std::process::exit(exit_code::USAGE);
            }
        }
    }

    /// The instruction budget, falling back to a binary-specific default.
    pub fn budget_or(&self, default: u64) -> u64 {
        self.budget.unwrap_or(default)
    }

    /// The worker-thread count, falling back to the host parallelism.
    pub fn threads_or_available(&self) -> usize {
        self.threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    }
}

fn parse_num<T: std::str::FromStr>(v: &str, what: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("invalid {what} value {v:?}"))
}

/// Parses a comma-separated matrix-index list (the repeatable
/// `--chaos-panic`/`--chaos-wedge` value form) into `out`.
fn parse_index_list(v: &str, what: &str, out: &mut Vec<usize>) -> Result<(), String> {
    for part in v.split(',') {
        out.push(parse_num(part.trim(), what)?);
    }
    Ok(())
}

/// The committed-instruction budget from the binary's command line
/// (`--budget N` or a bare positional `N`), falling back to `default`
/// (typically [`RUN_INSTS`]) when no budget is given. Lets CI smoke-run
/// the figure binaries on a tiny budget
/// (`cargo run --release --bin <bin> -- 2000`).
///
/// On a malformed command line, prints usage to stderr and exits with
/// [`exit_code::USAGE`] — a typo in a smoke budget must not silently
/// degrade into a full-budget run.
pub fn budget_from_args(default: u64) -> u64 {
    BenchCli::parse_or_exit("<bin> [--budget N | N]").budget_or(default)
}

/// Every `"key": <number>` occurrence in a hand-rolled JSON document, in
/// document order. Enough of a parser for the workspace's serde-free
/// reports (keys are never nested inside strings); used by the CI
/// perf-regression gate to read the checked-in baseline.
pub fn extract_json_numbers(json: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let trimmed = rest.trim_start();
        let end = trimmed
            .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
            .unwrap_or(trimmed.len());
        if let Ok(v) = trimmed[..end].parse::<f64>() {
            out.push(v);
        }
    }
    out
}

/// Runs one benchmark on a GALS machine with a DVFS plan applied.
pub fn run_gals_dvfs(bench: Benchmark, insts: u64, plan: DvfsPlan) -> SimReport {
    let program = generate(bench, WORKLOAD_SEED);
    let cfg = ProcessorConfig::gals_equal_1ghz(PHASE_SEED).with_dvfs(plan);
    simulate(&program, cfg, SimLimits::insts(insts)).expect("simulation failed")
}

/// Runs one benchmark on the base machine uniformly slowed (and voltage
/// scaled) by `factor` — the paper's "ideal" comparison column.
pub fn run_base_scaled(bench: Benchmark, insts: u64, factor: f64) -> SimReport {
    let program = generate(bench, WORKLOAD_SEED);
    let mut plan = DvfsPlan::nominal();
    plan.slowdown = [factor; 5];
    let cfg = ProcessorConfig::synchronous_1ghz().with_dvfs(plan);
    simulate(&program, cfg, SimLimits::insts(insts)).expect("simulation failed")
}

/// A DVFS plan from per-domain slowdown factors in paper order
/// (fetch, decode, int, fp, mem).
pub fn plan(slowdowns: [f64; 5]) -> DvfsPlan {
    let mut p = DvfsPlan::nominal();
    for d in Domain::ALL {
        p = p.with_slowdown(d, slowdowns[d.index()]);
    }
    p
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Geometric mean of a slice.
///
/// # Panics
///
/// Panics if `xs` is empty or contains non-positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    assert!(xs.iter().all(|&x| x > 0.0), "geomean needs positive values");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Arithmetic mean of a slice.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn runners_execute_on_a_small_budget() {
        // Smoke-guard for every figure binary's plumbing.
        let base = run_base(Benchmark::Adpcm, 2_000);
        let gals = run_gals(Benchmark::Adpcm, 2_000);
        assert_eq!(base.committed, 2_000);
        assert_eq!(gals.committed, 2_000);
        let dvfs = run_gals_dvfs(Benchmark::Adpcm, 2_000, plan([1.0, 1.0, 1.0, 2.0, 1.0]));
        assert_eq!(dvfs.committed, 2_000);
        let ideal = run_base_scaled(Benchmark::Adpcm, 2_000, 1.2);
        assert!(
            (ideal.exec_time.as_fs() as f64 / base.exec_time.as_fs() as f64 - 1.2).abs() < 0.01
        );
    }

    #[test]
    fn cli_parses_flags_and_positional_budget() {
        let cli = BenchCli::parse_from(["--budget", "5000", "--threads", "4", "--out", "x.json"])
            .unwrap();
        assert_eq!(cli.budget, Some(5_000));
        assert_eq!(cli.threads, Some(4));
        assert_eq!(cli.out.as_deref(), Some(std::path::Path::new("x.json")));
        assert_eq!(cli.tolerance, BenchCli::DEFAULT_TOLERANCE);

        // Historical smoke form: a bare positional budget.
        let cli = BenchCli::parse_from(["2000"]).unwrap();
        assert_eq!(cli.budget_or(120_000), 2_000);
        assert_eq!(
            BenchCli::parse_from([] as [&str; 0]).unwrap().budget_or(7),
            7
        );

        let cli = BenchCli::parse_from(["--baseline", "B.json", "--tolerance", "0.2"]).unwrap();
        assert_eq!(
            cli.baseline.as_deref(),
            Some(std::path::Path::new("B.json"))
        );
        assert_eq!(cli.tolerance, 0.2);

        let cli = BenchCli::parse_from(["--matrix", "m.json"]).unwrap();
        assert_eq!(cli.matrix.as_deref(), Some(std::path::Path::new("m.json")));
    }

    #[test]
    fn cli_parses_check_flag() {
        let cli = BenchCli::parse_from(["--check", "m.json"]).unwrap();
        assert_eq!(cli.check.as_deref(), Some(std::path::Path::new("m.json")));
        assert!(cli.matrix.is_none());
        assert!(BenchCli::parse_from(["--check"]).is_err());
        // --check and --matrix are distinct options at the parse layer;
        // the sweep binary rejects the combination (check is run-nothing).
        let cli = BenchCli::parse_from(["--check", "a.json", "--matrix", "b.json"]).unwrap();
        assert!(cli.check.is_some() && cli.matrix.is_some());
    }

    #[test]
    fn cli_parses_fault_tolerance_flags() {
        let cli = BenchCli::parse_from([
            "--journal",
            "sweep.jsonl",
            "--resume",
            "--retries",
            "2",
            "--run-timeout-ms",
            "120000",
        ])
        .unwrap();
        assert_eq!(
            cli.journal.as_deref(),
            Some(std::path::Path::new("sweep.jsonl"))
        );
        assert!(cli.resume);
        assert_eq!(cli.retries, Some(2));
        assert_eq!(cli.run_timeout_ms, Some(120_000));

        // Defaults: no journal, no resume, policy left to the matrix file.
        let cli = BenchCli::parse_from([] as [&str; 0]).unwrap();
        assert!(cli.journal.is_none() && !cli.resume);
        assert_eq!(cli.retries, None);
        assert_eq!(cli.run_timeout_ms, None);
    }

    #[test]
    fn cli_parses_chaos_injection_flags() {
        // Repeatable and comma-separated forms combine.
        let cli = BenchCli::parse_from([
            "--chaos-panic",
            "3",
            "--chaos-panic",
            "7,9",
            "--chaos-wedge",
            "1",
            "--chaos-stall",
            "4:250",
        ])
        .unwrap();
        assert_eq!(cli.chaos_panic, vec![3, 7, 9]);
        assert_eq!(cli.chaos_wedge, vec![1]);
        assert_eq!(cli.chaos_stall, vec![(4, 250)]);
    }

    #[test]
    fn cli_parses_cache_and_serve_flags() {
        let cli = BenchCli::parse_from(["--cache", "cachedir", "--cache-cap", "500"]).unwrap();
        assert_eq!(cli.cache.as_deref(), Some(std::path::Path::new("cachedir")));
        assert_eq!(cli.cache_cap, Some(500));
        assert!(cli.serve.is_none());

        let cli = BenchCli::parse_from(["--serve", "127.0.0.1:4601"]).unwrap();
        assert_eq!(cli.serve.as_deref(), Some("127.0.0.1:4601"));

        // Defaults: no cache, unbounded, no server.
        let cli = BenchCli::parse_from([] as [&str; 0]).unwrap();
        assert!(cli.cache.is_none() && cli.cache_cap.is_none() && cli.serve.is_none());

        assert!(BenchCli::parse_from(["--cache"]).is_err());
        assert!(BenchCli::parse_from(["--cache-cap", "0"]).is_err());
        assert!(BenchCli::parse_from(["--cache-cap", "x"]).is_err());
        assert!(BenchCli::parse_from(["--serve"]).is_err());
    }

    #[test]
    fn cli_parses_submit_and_service_flags() {
        let cli = BenchCli::parse_from([
            "--submit",
            "127.0.0.1:4601",
            "--submit-retries",
            "3",
            "--deadline-ms",
            "250",
        ])
        .unwrap();
        assert_eq!(cli.submit.as_deref(), Some("127.0.0.1:4601"));
        assert_eq!(cli.submit_retries, Some(3));
        assert_eq!(cli.deadline_ms, Some(250));

        let cli = BenchCli::parse_from([
            "--serve",
            "127.0.0.1:0",
            "--max-clients",
            "4",
            "--max-pending-runs",
            "64",
            "--chaos-drop-after",
            "2",
            "--chaos-drop-times",
            "3",
        ])
        .unwrap();
        assert_eq!(cli.max_clients, Some(4));
        assert_eq!(cli.max_pending_runs, Some(64));
        assert_eq!(cli.chaos_drop_after, Some(2));
        assert_eq!(cli.chaos_drop_times, Some(3));

        // Defaults: everything off.
        let cli = BenchCli::parse_from([] as [&str; 0]).unwrap();
        assert!(cli.submit.is_none() && cli.submit_retries.is_none());
        assert!(cli.deadline_ms.is_none());
        assert!(cli.max_clients.is_none() && cli.max_pending_runs.is_none());
        assert!(cli.chaos_drop_after.is_none() && cli.chaos_drop_times.is_none());

        assert!(BenchCli::parse_from(["--submit"]).is_err());
        assert!(BenchCli::parse_from(["--submit-retries", "0"]).is_err());
        assert!(BenchCli::parse_from(["--max-clients", "0"]).is_err());
        assert!(BenchCli::parse_from(["--max-pending-runs", "0"]).is_err());
        assert!(BenchCli::parse_from(["--chaos-drop-times", "0"]).is_err());
        assert!(BenchCli::parse_from(["--deadline-ms", "x"]).is_err());
    }

    #[test]
    fn cli_rejects_malformed_fault_tolerance_flags() {
        assert!(BenchCli::parse_from(["--retries", "-1"]).is_err());
        assert!(BenchCli::parse_from(["--run-timeout-ms", "0"]).is_err());
        assert!(BenchCli::parse_from(["--chaos-panic", "x"]).is_err());
        assert!(BenchCli::parse_from(["--chaos-stall", "4"]).is_err());
        assert!(BenchCli::parse_from(["--chaos-stall", "a:b"]).is_err());
        assert!(BenchCli::parse_from(["--journal"]).is_err());
    }

    #[test]
    fn atomic_write_lands_the_full_contents() {
        let path =
            std::env::temp_dir().join(format!("gals-bench-atomic-{}.json", std::process::id()));
        write_atomic(&path, "{\"a\": 1}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"a\": 1}\n");
        // Overwrite through the same path: the tmp sibling must be gone.
        write_atomic(&path, "{\"a\": 2}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"a\": 2}\n");
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!std::path::Path::new(&tmp).exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cli_rejects_malformed_lines() {
        assert!(BenchCli::parse_from(["--budget"]).is_err());
        assert!(BenchCli::parse_from(["--budget", "abc"]).is_err());
        assert!(BenchCli::parse_from(["--threads", "0"]).is_err());
        assert!(BenchCli::parse_from(["--tolerance", "1.5"]).is_err());
        assert!(BenchCli::parse_from(["--matrix"]).is_err());
        assert!(BenchCli::parse_from(["--frobnicate"]).is_err());
        assert!(BenchCli::parse_from(["12x"]).is_err());
        // A second positional is an unknown argument, not a silent override.
        assert!(BenchCli::parse_from(["100", "200"]).is_err());
    }

    #[test]
    fn json_number_extraction_reads_handrolled_reports() {
        let json = "{\n  \"mean\": 2.061,\n  \"runs\": [\n    {\"ips\": 742040, \"x\": -1.5e3},\n    {\"ips\": 613159}\n  ]\n}\n";
        assert_eq!(extract_json_numbers(json, "mean"), vec![2.061]);
        assert_eq!(
            extract_json_numbers(json, "ips"),
            vec![742_040.0, 613_159.0]
        );
        assert_eq!(extract_json_numbers(json, "x"), vec![-1_500.0]);
        assert!(extract_json_numbers(json, "absent").is_empty());
    }

    #[test]
    fn plan_maps_paper_order() {
        let p = plan([1.1, 1.0, 1.0, 1.5, 1.2]);
        assert_eq!(p.slowdown[Domain::Fetch.index()], 1.1);
        assert_eq!(p.slowdown[Domain::FpCluster.index()], 1.5);
        assert_eq!(p.slowdown[Domain::MemCluster.index()], 1.2);
    }
}
