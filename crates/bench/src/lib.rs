//! # gals-bench
//!
//! The benchmark harness regenerating every table and figure of the paper.
//! Each `src/bin/*.rs` binary reproduces one table/figure (see DESIGN.md §4
//! and EXPERIMENTS.md); this library holds the shared runners, the common
//! CLI ([`BenchCli`]) and table formatting.
//!
//! ## The scenario-sweep binary
//!
//! `cargo run --release --bin sweep -- [--budget N] [--threads N] [--out PATH]
//! [--matrix FILE]`
//! runs the default cartesian experiment matrix of the `gals-sweep` crate
//! — or, with `--matrix FILE`, a user-defined matrix loaded from JSON
//! (benchmark × clocking mode × pausible handshake duration × DVFS point ×
//! phase seed — see [`gals_sweep::SweepMatrix`] for the matrix format and
//! the `gals-sweep` crate docs for the full JSON schema) and writes the
//! schema-versioned report to `SWEEP_results.json`. The report is
//! bit-identical for every `--threads` value.
//!
//! ## Common CLI
//!
//! Every experiment binary accepts `--budget N` (or a bare positional `N`,
//! the historical smoke form) to override its committed-instruction budget;
//! binaries that write files accept `--out PATH`; parallel binaries accept
//! `--threads N`; `bench_throughput` additionally accepts
//! `--baseline PATH --tolerance F` for the CI perf-regression gate. Exit
//! codes are uniform across binaries: [`exit_code::OK`],
//! [`exit_code::REGRESSION`] (a gated comparison failed),
//! [`exit_code::USAGE`] (bad command line).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

use gals_clocks::Domain;
use gals_core::{simulate, DvfsPlan, ProcessorConfig, SimLimits, SimReport};
use gals_workload::{generate, Benchmark};

/// Committed-instruction budget per run. Large enough for steady-state
/// statistics, small enough that the full suite of experiments runs in
/// minutes.
pub const RUN_INSTS: u64 = 120_000;

/// Default workload seed (the "input set" of the synthetic benchmarks).
pub const WORKLOAD_SEED: u64 = 0x5EC9_5201;

/// Default phase seed for GALS local clocks.
pub const PHASE_SEED: u64 = 2002;

/// Runs one benchmark on the synchronous base machine.
pub fn run_base(bench: Benchmark, insts: u64) -> SimReport {
    let program = generate(bench, WORKLOAD_SEED);
    simulate(
        &program,
        ProcessorConfig::synchronous_1ghz(),
        SimLimits::insts(insts),
    )
}

/// Runs one benchmark on the GALS machine (equal 1 GHz clocks, random
/// phases).
pub fn run_gals(bench: Benchmark, insts: u64) -> SimReport {
    let program = generate(bench, WORKLOAD_SEED);
    simulate(
        &program,
        ProcessorConfig::gals_equal_1ghz(PHASE_SEED),
        SimLimits::insts(insts),
    )
}

/// Runs one benchmark on the pausible-clock ablation machine (equal 1 GHz
/// nominal clocks and the same phases as [`run_gals`], 300 ps handshake).
pub fn run_pausible(bench: Benchmark, insts: u64) -> SimReport {
    let program = generate(bench, WORKLOAD_SEED);
    simulate(
        &program,
        ProcessorConfig::pausible_equal_1ghz(PHASE_SEED),
        SimLimits::insts(insts),
    )
}

/// Runs one benchmark on the *rendezvous* pausible machine: the same
/// clocks, phases and handshake as [`run_pausible`], but every
/// inter-domain crossing is a single-entry rendezvous port (the capacity
/// cost of unbuffered handshakes is charged on top of the timing cost).
pub fn run_rendezvous(bench: Benchmark, insts: u64) -> SimReport {
    let program = generate(bench, WORKLOAD_SEED);
    simulate(
        &program,
        ProcessorConfig::pausible_rendezvous_1ghz(PHASE_SEED),
        SimLimits::insts(insts),
    )
}

/// Uniform process exit codes of the experiment binaries.
pub mod exit_code {
    /// Success.
    pub const OK: i32 = 0;
    /// A gated comparison failed (e.g. the CI perf-regression gate).
    pub const REGRESSION: i32 = 1;
    /// Bad command line — printed usage to stderr.
    pub const USAGE: i32 = 2;
}

/// The common command line of the experiment binaries: an instruction
/// budget (`--budget N` or the historical bare positional `N`), an output
/// path, a worker-thread count, and the perf-gate options. Individual
/// binaries use the subset they document and ignore the rest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchCli {
    /// Committed-instruction budget override (`--budget N` or bare `N`).
    pub budget: Option<u64>,
    /// Output file path (`--out PATH`).
    pub out: Option<PathBuf>,
    /// Worker-thread count (`--threads N`).
    pub threads: Option<usize>,
    /// Baseline JSON to gate against (`--baseline PATH`).
    pub baseline: Option<PathBuf>,
    /// User-defined sweep-matrix file (`--matrix PATH`; the `sweep`
    /// binary — see `gals_sweep::SweepMatrix::from_json` for the format).
    pub matrix: Option<PathBuf>,
    /// Relative regression tolerance for the gate (`--tolerance F`,
    /// default 0.15 = fail beyond a 15% mean regression).
    pub tolerance: f64,
}

impl BenchCli {
    /// Default gate tolerance: fail on a >15% mean regression.
    pub const DEFAULT_TOLERANCE: f64 = 0.15;

    /// Parses an argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on an unknown flag, a missing
    /// value, or an unparseable number — the callers route it to stderr
    /// and exit with [`exit_code::USAGE`].
    pub fn parse_from<I>(args: I) -> Result<Self, String>
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        let mut cli = BenchCli {
            tolerance: Self::DEFAULT_TOLERANCE,
            ..BenchCli::default()
        };
        let mut it = args.into_iter().map(Into::into);
        while let Some(arg) = it.next() {
            let mut value_of =
                |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
            match arg.as_str() {
                "--budget" => {
                    let v = value_of("--budget")?;
                    cli.budget = Some(parse_num(&v, "--budget")?);
                }
                "--out" => cli.out = Some(PathBuf::from(value_of("--out")?)),
                "--threads" => {
                    let v = value_of("--threads")?;
                    let n: usize = parse_num(&v, "--threads")?;
                    if n == 0 {
                        return Err("--threads must be at least 1".into());
                    }
                    cli.threads = Some(n);
                }
                "--baseline" => cli.baseline = Some(PathBuf::from(value_of("--baseline")?)),
                "--matrix" => cli.matrix = Some(PathBuf::from(value_of("--matrix")?)),
                "--tolerance" => {
                    let v = value_of("--tolerance")?;
                    let t: f64 = v
                        .parse()
                        .map_err(|_| format!("invalid --tolerance value {v:?}"))?;
                    if !(0.0..1.0).contains(&t) {
                        return Err(format!("--tolerance {t} outside [0, 1)"));
                    }
                    cli.tolerance = t;
                }
                other if !other.starts_with('-') && cli.budget.is_none() => {
                    cli.budget = Some(parse_num(other, "instruction budget")?);
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(cli)
    }

    /// Parses the process arguments; on error prints the message and
    /// `usage` to stderr and exits with [`exit_code::USAGE`].
    pub fn parse_or_exit(usage: &str) -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(cli) => cli,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!("usage: {usage}");
                std::process::exit(exit_code::USAGE);
            }
        }
    }

    /// The instruction budget, falling back to a binary-specific default.
    pub fn budget_or(&self, default: u64) -> u64 {
        self.budget.unwrap_or(default)
    }

    /// The worker-thread count, falling back to the host parallelism.
    pub fn threads_or_available(&self) -> usize {
        self.threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    }
}

fn parse_num<T: std::str::FromStr>(v: &str, what: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("invalid {what} value {v:?}"))
}

/// The committed-instruction budget from the binary's command line
/// (`--budget N` or a bare positional `N`), falling back to `default`
/// (typically [`RUN_INSTS`]) when no budget is given. Lets CI smoke-run
/// the figure binaries on a tiny budget
/// (`cargo run --release --bin <bin> -- 2000`).
///
/// On a malformed command line, prints usage to stderr and exits with
/// [`exit_code::USAGE`] — a typo in a smoke budget must not silently
/// degrade into a full-budget run.
pub fn budget_from_args(default: u64) -> u64 {
    BenchCli::parse_or_exit("<bin> [--budget N | N]").budget_or(default)
}

/// Every `"key": <number>` occurrence in a hand-rolled JSON document, in
/// document order. Enough of a parser for the workspace's serde-free
/// reports (keys are never nested inside strings); used by the CI
/// perf-regression gate to read the checked-in baseline.
pub fn extract_json_numbers(json: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let trimmed = rest.trim_start();
        let end = trimmed
            .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
            .unwrap_or(trimmed.len());
        if let Ok(v) = trimmed[..end].parse::<f64>() {
            out.push(v);
        }
    }
    out
}

/// Runs one benchmark on a GALS machine with a DVFS plan applied.
pub fn run_gals_dvfs(bench: Benchmark, insts: u64, plan: DvfsPlan) -> SimReport {
    let program = generate(bench, WORKLOAD_SEED);
    let cfg = ProcessorConfig::gals_equal_1ghz(PHASE_SEED).with_dvfs(plan);
    simulate(&program, cfg, SimLimits::insts(insts))
}

/// Runs one benchmark on the base machine uniformly slowed (and voltage
/// scaled) by `factor` — the paper's "ideal" comparison column.
pub fn run_base_scaled(bench: Benchmark, insts: u64, factor: f64) -> SimReport {
    let program = generate(bench, WORKLOAD_SEED);
    let mut plan = DvfsPlan::nominal();
    plan.slowdown = [factor; 5];
    let cfg = ProcessorConfig::synchronous_1ghz().with_dvfs(plan);
    simulate(&program, cfg, SimLimits::insts(insts))
}

/// A DVFS plan from per-domain slowdown factors in paper order
/// (fetch, decode, int, fp, mem).
pub fn plan(slowdowns: [f64; 5]) -> DvfsPlan {
    let mut p = DvfsPlan::nominal();
    for d in Domain::ALL {
        p = p.with_slowdown(d, slowdowns[d.index()]);
    }
    p
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Geometric mean of a slice.
///
/// # Panics
///
/// Panics if `xs` is empty or contains non-positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    assert!(xs.iter().all(|&x| x > 0.0), "geomean needs positive values");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Arithmetic mean of a slice.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn runners_execute_on_a_small_budget() {
        // Smoke-guard for every figure binary's plumbing.
        let base = run_base(Benchmark::Adpcm, 2_000);
        let gals = run_gals(Benchmark::Adpcm, 2_000);
        assert_eq!(base.committed, 2_000);
        assert_eq!(gals.committed, 2_000);
        let dvfs = run_gals_dvfs(Benchmark::Adpcm, 2_000, plan([1.0, 1.0, 1.0, 2.0, 1.0]));
        assert_eq!(dvfs.committed, 2_000);
        let ideal = run_base_scaled(Benchmark::Adpcm, 2_000, 1.2);
        assert!(
            (ideal.exec_time.as_fs() as f64 / base.exec_time.as_fs() as f64 - 1.2).abs() < 0.01
        );
    }

    #[test]
    fn cli_parses_flags_and_positional_budget() {
        let cli = BenchCli::parse_from(["--budget", "5000", "--threads", "4", "--out", "x.json"])
            .unwrap();
        assert_eq!(cli.budget, Some(5_000));
        assert_eq!(cli.threads, Some(4));
        assert_eq!(cli.out.as_deref(), Some(std::path::Path::new("x.json")));
        assert_eq!(cli.tolerance, BenchCli::DEFAULT_TOLERANCE);

        // Historical smoke form: a bare positional budget.
        let cli = BenchCli::parse_from(["2000"]).unwrap();
        assert_eq!(cli.budget_or(120_000), 2_000);
        assert_eq!(
            BenchCli::parse_from([] as [&str; 0]).unwrap().budget_or(7),
            7
        );

        let cli = BenchCli::parse_from(["--baseline", "B.json", "--tolerance", "0.2"]).unwrap();
        assert_eq!(
            cli.baseline.as_deref(),
            Some(std::path::Path::new("B.json"))
        );
        assert_eq!(cli.tolerance, 0.2);

        let cli = BenchCli::parse_from(["--matrix", "m.json"]).unwrap();
        assert_eq!(cli.matrix.as_deref(), Some(std::path::Path::new("m.json")));
    }

    #[test]
    fn cli_rejects_malformed_lines() {
        assert!(BenchCli::parse_from(["--budget"]).is_err());
        assert!(BenchCli::parse_from(["--budget", "abc"]).is_err());
        assert!(BenchCli::parse_from(["--threads", "0"]).is_err());
        assert!(BenchCli::parse_from(["--tolerance", "1.5"]).is_err());
        assert!(BenchCli::parse_from(["--matrix"]).is_err());
        assert!(BenchCli::parse_from(["--frobnicate"]).is_err());
        assert!(BenchCli::parse_from(["12x"]).is_err());
        // A second positional is an unknown argument, not a silent override.
        assert!(BenchCli::parse_from(["100", "200"]).is_err());
    }

    #[test]
    fn json_number_extraction_reads_handrolled_reports() {
        let json = "{\n  \"mean\": 2.061,\n  \"runs\": [\n    {\"ips\": 742040, \"x\": -1.5e3},\n    {\"ips\": 613159}\n  ]\n}\n";
        assert_eq!(extract_json_numbers(json, "mean"), vec![2.061]);
        assert_eq!(
            extract_json_numbers(json, "ips"),
            vec![742_040.0, 613_159.0]
        );
        assert_eq!(extract_json_numbers(json, "x"), vec![-1_500.0]);
        assert!(extract_json_numbers(json, "absent").is_empty());
    }

    #[test]
    fn plan_maps_paper_order() {
        let p = plan([1.1, 1.0, 1.0, 1.5, 1.2]);
        assert_eq!(p.slowdown[Domain::Fetch.index()], 1.1);
        assert_eq!(p.slowdown[Domain::FpCluster.index()], 1.5);
        assert_eq!(p.slowdown[Domain::MemCluster.index()], 1.2);
    }
}
