//! End-to-end simulation throughput: simulated instructions per host
//! second for both processor models, on a representative benchmark.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gals_core::{simulate, ProcessorConfig, SimLimits};
use gals_workload::{generate, Benchmark};

const INSTS: u64 = 10_000;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    group.throughput(Throughput::Elements(INSTS));
    group.sample_size(20);
    for bench in [Benchmark::Gcc, Benchmark::Fpppp] {
        let program = generate(bench, 42);
        group.bench_with_input(BenchmarkId::new("base", bench.name()), &program, |b, p| {
            b.iter(|| {
                black_box(
                    simulate(
                        p,
                        ProcessorConfig::synchronous_1ghz(),
                        SimLimits::insts(INSTS),
                    )
                    .expect("simulation failed"),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("gals", bench.name()), &program, |b, p| {
            b.iter(|| {
                black_box(
                    simulate(
                        p,
                        ProcessorConfig::gals_equal_1ghz(1),
                        SimLimits::insts(INSTS),
                    )
                    .expect("simulation failed"),
                )
            })
        });
    }
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    c.bench_function("workload/generate_gcc", |b| {
        b.iter(|| black_box(generate(Benchmark::Gcc, 42)))
    });
}

criterion_group!(benches, bench_end_to_end, bench_workload_generation);
criterion_main!(benches);
