//! Criterion micro-benchmarks of the simulator's hot substrates: the event
//! queue, the mixed-clock channel, the caches, the branch predictor and the
//! issue queue. These guard the simulation *speed* (simulated instructions
//! per host second), which every paper experiment depends on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gals_clocks::Channel;
use gals_core::{simulate, ProcessorConfig, SimLimits};
use gals_events::{ClockSet, Control, Engine, Time};
use gals_isa::rng::hash3;
use gals_uarch::{BpredConfig, BranchPredictor, Cache, CacheGeometry, IssueQueue, PhysReg};
use gals_workload::{generate, Benchmark};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("events/three_clock_engine_1us", |b| {
        b.iter(|| {
            let mut engine: Engine<u64> = Engine::new();
            for (i, (phase, period)) in [(500u64, 2_000u64), (1_000, 3_000), (0, 2_500)]
                .into_iter()
                .enumerate()
            {
                engine.schedule_periodic(
                    Time::from_ps(phase),
                    Time::from_ps(period),
                    i as i32, // distinct per-clock priorities (the contract)
                    |count: &mut u64, _| {
                        *count += 1;
                        Control::Keep
                    },
                );
            }
            let mut count = 0;
            engine.run_until(&mut count, Time::from_ns(1_000));
            black_box(count)
        })
    });
}

fn bench_clockset(c: &mut Criterion) {
    // The same three paper clocks on the static scheduler — the direct
    // comparison against events/three_clock_engine_1us.
    c.bench_function("events/clockset_1us", |b| {
        b.iter(|| {
            let mut cs = ClockSet::new();
            for (i, (phase, period)) in [(500u64, 2_000u64), (1_000, 3_000), (0, 2_500)]
                .into_iter()
                .enumerate()
            {
                cs.add_clock(Time::from_ps(phase), Time::from_ps(period), i as i32);
            }
            let mut count = 0u64;
            cs.run_until(Time::from_ns(1_000), |_, _| count += 1);
            black_box(count)
        })
    });
}

fn bench_sim_throughput(c: &mut Criterion) {
    // End-to-end simulated-instructions-per-host-second — the number every
    // paper experiment is bottlenecked on. Tracked across PRs via
    // `cargo run --release --bin bench_throughput` (BENCH_throughput.json).
    let program = generate(Benchmark::Gcc, 42);
    c.bench_function("sim/throughput_insts_per_sec", |b| {
        b.iter(|| {
            black_box(
                simulate(
                    &program,
                    ProcessorConfig::synchronous_1ghz(),
                    SimLimits::insts(10_000),
                )
                .expect("simulation failed"),
            )
        })
    });
}

fn bench_channel(c: &mut Criterion) {
    c.bench_function("clocks/fifo_push_pop_10k", |b| {
        b.iter(|| {
            let mut ch: Channel<u64> =
                Channel::mixed_clock_fifo(8, Time::from_ns(1), Time::from_ns(1));
            let mut popped = 0u64;
            for i in 0..10_000u64 {
                let t = Time::from_ns(2 * i + 1);
                let _ = ch.try_push(i, t);
                if ch.try_pop(t + Time::from_ns(1)).is_some() {
                    popped += 1;
                }
            }
            black_box(popped)
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("uarch/l1d_access_10k", |b| {
        let mut cache = Cache::new(CacheGeometry {
            size_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 64,
            latency: 1,
        });
        b.iter(|| {
            let mut hits = 0u64;
            for i in 0..10_000u64 {
                if cache.access(hash3(1, 2, i) % (1 << 18)) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

fn bench_bpred(c: &mut Criterion) {
    c.bench_function("uarch/gshare_predict_update_10k", |b| {
        let mut bp = BranchPredictor::new(BpredConfig::default());
        b.iter(|| {
            let mut taken = 0u64;
            for i in 0..10_000u64 {
                let pc = (i % 64) * 4;
                let outcome = hash3(3, pc, i) & 3 != 0;
                let p = bp.predict_cond(pc);
                bp.update_cond(pc, outcome, pc + 64, p.taken);
                taken += u64::from(p.taken);
            }
            black_box(taken)
        })
    });
}

fn bench_issue_queue(c: &mut Criterion) {
    c.bench_function("uarch/issue_queue_cycle_20deep", |b| {
        b.iter(|| {
            let mut iq = IssueQueue::new(20);
            let mut issued = 0u64;
            for round in 0..500u64 {
                for k in 0..4 {
                    let token = round * 4 + k;
                    let _ = iq.insert(token, token, vec![PhysReg((token % 64) as u16)]);
                }
                iq.wakeup(PhysReg((round % 64) as u16));
                issued += iq.select(4).len() as u64;
            }
            black_box(issued)
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_clockset,
    bench_channel,
    bench_cache,
    bench_bpred,
    bench_issue_queue,
    bench_sim_throughput
);
criterion_main!(benches);
