// Fixture: idiomatic workspace code that must produce zero findings under
// any pretend path — integer counts, BTreeMap for ordered output, errors
// returned instead of process kills, and a test-tail module whose
// contents are exempt (the gate stops the scan).
use std::collections::BTreeMap;

pub fn to_json(counts: &BTreeMap<String, u64>) -> String {
    let mut out = String::from("{");
    for (k, v) in counts {
        out.push_str(&format!("\"{k}\": {v},"));
    }
    out.push('}');
    out
}

pub fn tally(events: &[u64]) -> u64 {
    let mut total: u64 = 0;
    for e in events {
        total += e;
    }
    total
}

#[cfg(test)]
mod tests {
    // Exempt: even a std::process::exit(1) here would not be flagged.
}
