// Fixture: a count-named binding typed as a float. Scanned under the
// pretend path `crates/power/src/bad.rs`; exactly one GL104 finding (the
// `cycle_total` declaration; the increment adds an integer-typed cast so
// the `+=` float-literal matcher stays quiet).
pub fn drift(samples: &[u64]) -> f64 {
    let mut cycle_total: f64 = 0.0;
    for s in samples {
        cycle_total += *s as f64;
    }
    cycle_total
}
