// Fixture: killing the process from library code. Scanned under the
// pretend path `crates/sweep/src/bad.rs` (anywhere but crates/bench);
// exactly one GL105 finding.
pub fn bail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1)
}
