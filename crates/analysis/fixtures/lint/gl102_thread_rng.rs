// Fixture: ambient entropy inside a simulation crate. Scanned under the
// pretend path `crates/workload/src/bad.rs`; exactly one GL102 finding.
pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
