// Fixture: a wall-clock read inside a simulation crate. Scanned by the
// self-test under the pretend path `crates/core/src/bad.rs`; must trigger
// exactly one GL101 finding (this comment is stripped before matching).
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
