// Fixture: accumulating an event tally in floating point. Scanned under
// the pretend path `crates/uarch/src/bad.rs`; exactly one GL104 finding
// (the `+=` float-literal line; the field declaration uses a name the
// count-binding matcher does not flag).
pub struct Tally {
    pub weight: f64,
}

impl Tally {
    pub fn bump(&mut self) {
        self.weight += 1.0;
    }
}
