// Fixture: the classic bit-identity bug — serializing a HashMap's
// iteration order straight into a JSON report. Scanned under the pretend
// path `crates/sweep/src/bad.rs`; exactly one GL103 finding (the single
// type mention below — the loop itself names no banned type).
pub fn to_json(counts: &std::collections::HashMap<String, u64>) -> String {
    let mut out = String::from("{");
    for (k, v) in counts {
        out.push_str(&format!("\"{k}\": {v},"));
    }
    out.push('}');
    out
}
