//! Property tests for the static verifier: random topologies with
//! constructed rendezvous cycles must always be flagged (no false
//! negatives against the wait-graph theory), breaking the cycle must
//! clear the flag (no stuck-at-error), random non-atomic multi-port
//! claims must trip hold-and-wait exactly when the theory says so — and
//! the shipping `paper_default` experiment matrix must vet completely
//! clean, point by point.

use gals_analysis::{codes, CommGraph, Edge, EdgeKind};
use proptest::prelude::*;

/// A ring of `n` domains connected by rendezvous data edges; the edge at
/// `break_at` (if any) is made safe by marking it unconditionally
/// drained, which removes it from the wait graph.
fn ring(n: usize, break_at: Option<usize>) -> CommGraph {
    let mut g = CommGraph::new();
    for i in 0..n {
        g.add_node(format!("d{i}"), i as i32, 1_000_000);
    }
    for i in 0..n {
        g.add_edge(Edge {
            from: i,
            to: (i + 1) % n,
            capacity: 1,
            rendezvous: true,
            drained_unconditionally: break_at == Some(i),
            kind: EdgeKind::Data,
            group: None,
        });
    }
    g
}

fn codes_of(g: &CommGraph) -> Vec<&'static str> {
    g.verify().findings.iter().map(|f| f.code).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No false negatives: every all-rendezvous ring is a sustained
    /// circular wait and must be flagged GA001, whatever its size.
    #[test]
    fn every_rendezvous_ring_is_flagged(n in 1usize..8) {
        let g = ring(n, None);
        prop_assert!(
            codes_of(&g).contains(&codes::RENDEZVOUS_CYCLE),
            "ring of {n} not flagged: {:?}", g.verify().findings
        );
    }

    /// Breaking any single edge of the ring (an unconditional drain, like
    /// the real machine's completion/wakeup sinks) clears GA001 — the
    /// checker tracks the wait graph, not mere connectivity.
    #[test]
    fn one_drained_edge_breaks_the_cycle(n in 2usize..8, which in 0usize..8) {
        let g = ring(n, Some(which % n));
        prop_assert!(
            !codes_of(&g).contains(&codes::RENDEZVOUS_CYCLE),
            "broken ring of {n} still flagged: {:?}", g.verify().findings
        );
    }

    /// Hold-and-wait triggers exactly per the theory: a multi-port claim
    /// is GA003 iff it is non-atomic AND holds ≥2 rendezvous ports.
    #[test]
    fn hold_and_wait_matches_the_theory(
        atomic in any::<bool>(),
        rendezvous_ports in 0usize..4,
        buffered_ports in 0usize..3,
    ) {
        let mut g = CommGraph::new();
        let p = g.add_node("producer", 0, 1_000_000);
        let group = g.add_group("claim", atomic);
        let mut consumers = Vec::new();
        for i in 0..(rendezvous_ports + buffered_ports) {
            consumers.push(g.add_node(format!("c{i}"), (i + 1) as i32, 1_000_000));
        }
        for (i, &c) in consumers.iter().enumerate() {
            let rendezvous = i < rendezvous_ports;
            g.add_edge(Edge {
                from: p,
                to: c,
                capacity: if rendezvous { 1 } else { 12 },
                rendezvous,
                drained_unconditionally: false,
                kind: EdgeKind::Completion,
                group: Some(group),
            });
        }
        let expect = !atomic && rendezvous_ports >= 2;
        prop_assert_eq!(codes_of(&g).contains(&codes::HOLD_AND_WAIT), expect);
    }

    /// Priorities: any duplicated pair among otherwise-distinct domains
    /// is GA004; all-distinct assignments never are.
    #[test]
    fn duplicate_priorities_are_always_caught(n in 2usize..6, dup in any::<bool>()) {
        let mut g = CommGraph::new();
        for i in 0..n {
            let priority = if dup && i == n - 1 { 0 } else { i as i32 };
            g.add_node(format!("d{i}"), priority, 1_000_000);
        }
        // A chain keeps every node reachable so GA008 stays out of the way.
        for i in 0..n - 1 {
            g.add_edge(Edge {
                from: i,
                to: i + 1,
                capacity: 12,
                rendezvous: false,
                drained_unconditionally: false,
                kind: EdgeKind::Data,
                group: None,
            });
        }
        prop_assert_eq!(codes_of(&g).contains(&codes::DUPLICATE_CLOCK_PRIORITY), dup);
    }
}

/// The shipping experiment matrix is the analyzer's most important
/// negative control: all of `paper_default` must vet clean, every point,
/// with zero simulation — this is what `sweep --check` runs in CI.
#[test]
fn every_paper_default_point_checks_clean() {
    let matrix = gals_sweep::SweepMatrix::paper_default(60_000);
    let specs = matrix.expand();
    assert!(specs.len() >= 100, "paper matrix shrank to {}", specs.len());
    for spec in &specs {
        let findings = spec.static_findings();
        assert!(
            findings.is_empty(),
            "point {} ({} {} {}): {findings:?}",
            spec.index,
            spec.benchmark.name(),
            spec.mode.label(),
            spec.dvfs.label,
        );
    }
}

/// The real machine's graph itself: the rendezvous configuration is a
/// cycle-free wait graph (completion/wakeup edges are drained sinks), so
/// GA001/GA003 must NOT fire on it — the checks exist for user configs
/// and regressions, not to condemn the shipping topology.
#[test]
fn the_shipping_rendezvous_machine_is_not_a_false_positive() {
    let cfg = gals_core::ProcessorConfig::pausible_rendezvous_1ghz(1);
    let report = gals_core::comm_graph(&cfg).verify();
    assert!(
        report.is_clean(),
        "shipping rendezvous graph flagged: {:?}",
        report.findings
    );
}
