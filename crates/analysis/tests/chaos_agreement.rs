//! Static/runtime agreement on wedge deadlocks: a configuration the
//! analyzer flags GA002 for must actually deadlock under the runtime
//! watchdog, and the structured `DeadlockReport` must carry the static
//! verdict back (`static_finding`), closing the loop both ways.
//!
//! The dev-dependency on `gals-core` enables the `chaos` feature, so the
//! wedge knobs are unconditionally available here.

use gals_analysis::codes;
use gals_core::{analyze, simulate, ProcessorConfig, SimError, SimLimits};
use gals_workload::{generate, Benchmark};

/// The wedge from `crates/core/tests/deadlock.rs`: withhold one
/// writeback so the ROB head never retires, on a tight watchdog.
fn wedged_limits(seq: u64) -> SimLimits {
    let mut limits = SimLimits::insts(2_000).with_watchdog_cycles(500);
    limits.chaos.withhold_writeback = Some(seq);
    limits
}

#[test]
fn the_analyzer_flags_what_the_watchdog_catches() {
    let cfg = ProcessorConfig::gals_equal_1ghz(1);
    let limits = wedged_limits(150);

    // Static side: the pre-flight analyzer calls the wedge before any
    // simulation happens, and GA002 is the overall verdict.
    let analysis = analyze(&cfg, &limits);
    let verdict = analysis.static_verdict().expect("a wedge is never clean");
    assert_eq!(verdict.code, codes::WEDGED_PRODUCER);

    // Runtime side: the same configuration really does deadlock, and the
    // report cross-references the static verdict.
    let program = generate(Benchmark::Adpcm, 1);
    match simulate(&program, cfg, limits) {
        Err(SimError::Deadlock(report)) => {
            assert_eq!(report.rob_head_seq, Some(150));
            assert_eq!(
                report.static_finding.as_deref(),
                Some(codes::WEDGED_PRODUCER),
                "the deadlock report must carry the analyzer's verdict"
            );
            let shown = format!("{report}");
            assert!(
                shown.contains("static_finding=GA002"),
                "Display must surface the pre-flight verdict: {shown}"
            );
        }
        other => panic!("expected a deadlock, got {other:?}"),
    }
}

#[test]
fn a_wedge_beyond_the_budget_is_statically_and_dynamically_clean() {
    // Withholding a writeback the run never reaches is a no-op on both
    // sides: no GA002, no deadlock, and no static_finding to report.
    let cfg = ProcessorConfig::gals_equal_1ghz(1);
    let mut limits = SimLimits::insts(1_000).with_watchdog_cycles(500);
    limits.chaos.withhold_writeback = Some(1_000_000);

    let analysis = analyze(&cfg, &limits);
    assert!(
        !analysis
            .findings
            .iter()
            .any(|f| f.code == codes::WEDGED_PRODUCER),
        "unreachable wedge must not be flagged: {:?}",
        analysis.findings
    );

    let program = generate(Benchmark::Adpcm, 1);
    let report = simulate(&program, cfg, limits).expect("unreachable wedge runs clean");
    assert_eq!(report.committed, 1_000);
}

#[test]
fn a_healthy_config_deadlock_still_reports_no_static_finding() {
    // An impossibly tight watchdog on a *clean* config deadlocks at
    // runtime with no static verdict — the analyzer only warns on an
    // armed watchdog, never errors, so `static_finding` stays None and
    // the two detectors disagree exactly when they should: the analyzer
    // sees configurations, not workloads.
    let program = generate(Benchmark::Adpcm, 1);
    let limits = SimLimits::insts(5_000).with_watchdog_cycles(1);
    match simulate(&program, ProcessorConfig::gals_equal_1ghz(1), limits) {
        Err(SimError::Deadlock(report)) => {
            assert_eq!(report.static_finding, None);
            assert!(!format!("{report}").contains("static_finding"));
        }
        other => panic!("expected a watchdog deadlock, got {other:?}"),
    }
}
