//! gals-lint self-test: every known-bad fixture in `fixtures/lint/`
//! triggers exactly one finding of its advertised rule, the clean
//! fixture triggers none, and the real workspace tree lints green (the
//! allowlist in `analysis/lint_allow.toml` carries every waiver).

use std::path::Path;

use gals_analysis::lint::{find_workspace_root, lint_tree, scan_file};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures/lint")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

/// Each bad fixture, the path it pretends to live at (which selects the
/// rules in force), and the one rule it must trip.
const BAD: [(&str, &str, &str); 5] = [
    ("gl101_instant_now.rs", "crates/core/src/bad.rs", "GL101"),
    ("gl102_thread_rng.rs", "crates/workload/src/bad.rs", "GL102"),
    ("gl103_hashmap_json.rs", "crates/sweep/src/bad.rs", "GL103"),
    ("gl104_float_accum.rs", "crates/uarch/src/bad.rs", "GL104"),
    ("gl105_process_exit.rs", "crates/sweep/src/bad.rs", "GL105"),
];

#[test]
fn each_bad_fixture_trips_exactly_its_rule() {
    for (file, pretend, rule) in BAD {
        let findings = scan_file(pretend, &fixture(file));
        assert_eq!(
            findings.len(),
            1,
            "{file} under {pretend}: expected exactly one finding, got {findings:?}"
        );
        assert_eq!(findings[0].rule, rule, "{file}: wrong rule");
        assert_eq!(findings[0].path, pretend);
        assert!(findings[0].line > 0);
    }
}

#[test]
fn count_binding_fixture_trips_gl104() {
    // The second GL104 form: a count-named f64 binding (no float-literal
    // accumulation anywhere in the snippet).
    let findings = scan_file(
        "crates/power/src/bad.rs",
        &fixture("gl104_count_binding.rs"),
    );
    assert_eq!(findings.len(), 1, "got {findings:?}");
    assert_eq!(findings[0].rule, "GL104");
    assert!(findings[0].message.contains("cycle_total"));
}

#[test]
fn fixtures_out_of_scope_paths_are_quiet() {
    // Rules are scoped: a wall-clock read outside the simulation crates
    // is fine (the sweep watchdog needs one), and a process exit inside
    // crates/bench is the sanctioned place for it.
    assert!(scan_file("crates/bench/src/bad.rs", &fixture("gl101_instant_now.rs")).is_empty());
    assert!(scan_file("crates/bench/src/bad.rs", &fixture("gl105_process_exit.rs")).is_empty());
}

#[test]
fn clean_fixture_is_clean_everywhere() {
    for pretend in [
        "crates/core/src/good.rs",
        "crates/sweep/src/good.rs",
        "crates/bench/src/good.rs",
    ] {
        let findings = scan_file(pretend, &fixture("clean.rs"));
        assert!(findings.is_empty(), "{pretend}: {findings:?}");
    }
}

#[test]
fn workspace_tree_lints_green() {
    // The CI gate in test form: the real tree, with the real allowlist,
    // has zero unwaived findings and zero stale waivers. Every waiver in
    // analysis/lint_allow.toml must keep matching a live finding.
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the analysis crate");
    let outcome = lint_tree(&root).expect("lint run");
    assert!(outcome.files_scanned > 50, "suspiciously small scan");
    assert!(
        outcome.is_clean(),
        "tree not clean: findings={:?} stale={:?}",
        outcome.findings,
        outcome.stale_waivers,
    );
    assert!(outcome.waived > 0, "the allowlist should be exercised");
}
