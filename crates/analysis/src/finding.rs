//! Structured analysis findings.
//!
//! Every check in this crate reports through [`Finding`]: a stable code
//! (`GA…` for model-level config analysis, `GL…` for the source lint), a
//! [`Severity`], and a human-readable message. Codes are part of the
//! public contract — tests, CI greps and the sweep schema all key on
//! them — so existing codes must never be renumbered or reused.

use std::fmt;

/// How bad a finding is. `Error` blocks simulation; `Warning` lets the
/// run proceed but gates `sweep --check` and is cross-referenced by the
/// deadlock report; `Info` is advisory only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory note; never gates anything.
    Info,
    /// Suspicious but runnable; gates `sweep --check` (exit 4).
    Warning,
    /// The config cannot run; `simulate()` refuses it up front.
    Error,
}

impl Severity {
    /// Lower-case label used in rendered findings and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable finding codes for the model-level analysis pass (GA = "GALS
/// analysis"). See `docs/ANALYSIS.md` for the full table.
pub mod codes {
    /// Cycle of rendezvous (zero-buffer) edges none of which is drained
    /// unconditionally: a circular wait the runtime cannot break.
    pub const RENDEZVOUS_CYCLE: &str = "GA001";
    /// A producer is statically known to stop producing (e.g. a chaos
    /// `withhold_writeback` wedge armed below the instruction budget),
    /// so downstream domains will starve and the watchdog will fire.
    pub const WEDGED_PRODUCER: &str = "GA002";
    /// Two or more rendezvous ports acquired together without an atomic
    /// claim: classic hold-and-wait, deadlocks under contention.
    pub const HOLD_AND_WAIT: &str = "GA003";
    /// Two clock domains share a scheduler priority, so same-edge event
    /// order is unspecified.
    pub const DUPLICATE_CLOCK_PRIORITY: &str = "GA004";
    /// A channel capacity outside its legal range (zero, undersized, or
    /// a rendezvous port with capacity != 1).
    pub const CHANNEL_CAPACITY: &str = "GA005";
    /// A DVFS slowdown below 1.0 / non-finite, or a non-uniform plan on
    /// a single-clock (synchronous) machine.
    pub const DVFS_RANGE: &str = "GA006";
    /// `fifo_sync_periods` outside the modeled [0, 8] window.
    pub const SYNC_RANGE: &str = "GA007";
    /// A domain no instruction can ever reach along data edges.
    pub const UNREACHABLE_DOMAIN: &str = "GA008";
    /// Budget sanity: zero instruction budget, or a disabled watchdog on
    /// a blocking (rendezvous) machine.
    pub const BUDGET_SANITY: &str = "GA009";
    /// A structural parameter failed its own validation (wraps the
    /// original uarch/energy message).
    pub const PARAM_INVALID: &str = "GA010";
}

/// One analysis finding: stable code + severity + message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable code, e.g. `"GA001"` — never renumbered.
    pub code: &'static str,
    /// How bad it is.
    pub severity: Severity,
    /// Human-readable description naming the offending element.
    pub message: String,
}

impl Finding {
    /// Builds an error-severity finding.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Finding {
            code,
            severity: Severity::Error,
            message: message.into(),
        }
    }

    /// Builds a warning-severity finding.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Finding {
            code,
            severity: Severity::Warning,
            message: message.into(),
        }
    }

    /// Builds an info-severity finding.
    pub fn info(code: &'static str, message: impl Into<String>) -> Self {
        Finding {
            code,
            severity: Severity::Info,
            message: message.into(),
        }
    }

    /// Renders the finding as a JSON object (hand-rolled, like the rest
    /// of the workspace's serialization).
    pub fn json(&self) -> String {
        format!(
            "{{\"code\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\"}}",
            self.code,
            self.severity.as_str(),
            json_escape(&self.message)
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.code, self.severity, self.message)
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The outcome of an analysis pass: an ordered list of findings.
///
/// Order is deterministic (checks run in a fixed sequence, graph nodes
/// and edges are visited in insertion order), so two analyses of the
/// same config produce byte-identical reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisReport {
    /// All findings, in the deterministic order the checks emitted them.
    pub findings: Vec<Finding>,
}

impl AnalysisReport {
    /// An empty (clean) report.
    pub fn new() -> Self {
        AnalysisReport::default()
    }

    /// Appends one finding.
    pub fn push(&mut self, finding: Finding) {
        self.findings.push(finding);
    }

    /// Appends every finding from `more`.
    pub fn extend(&mut self, more: impl IntoIterator<Item = Finding>) {
        self.findings.extend(more);
    }

    /// Absorbs another report's findings.
    pub fn merge(&mut self, other: AnalysisReport) {
        self.findings.extend(other.findings);
    }

    /// True when no findings of any severity were produced.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The first error-severity finding, if any — what `simulate()`
    /// attaches to `SimError::InvalidConfig`.
    pub fn first_error(&self) -> Option<&Finding> {
        self.findings.iter().find(|f| f.severity == Severity::Error)
    }

    /// The most severe warning-or-worse finding (ties broken by emission
    /// order). This is the "static verdict" a later `DeadlockReport`
    /// cross-references.
    pub fn static_verdict(&self) -> Option<&Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity >= Severity::Warning)
            .max_by_key(|f| f.severity)
    }

    /// True when any finding is warning-severity or worse — the gate
    /// `sweep --check` keys its exit code on.
    pub fn has_blocking(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.severity >= Severity::Warning)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_info_below_warning_below_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn display_carries_code_severity_and_message() {
        let f = Finding::error(codes::CHANNEL_CAPACITY, "capacity 0 on fetch->decode");
        assert_eq!(f.to_string(), "[GA005] error: capacity 0 on fetch->decode");
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let f = Finding::warning(codes::BUDGET_SANITY, "say \"no\"\nplease");
        assert_eq!(
            f.json(),
            "{\"code\": \"GA009\", \"severity\": \"warning\", \
             \"message\": \"say \\\"no\\\"\\nplease\"}"
        );
    }

    #[test]
    fn static_verdict_prefers_the_most_severe_finding() {
        let mut report = AnalysisReport::new();
        report.push(Finding::info(codes::BUDGET_SANITY, "watchdog off"));
        assert!(report.static_verdict().is_none());
        report.push(Finding::warning(codes::WEDGED_PRODUCER, "wedge armed"));
        report.push(Finding::error(codes::RENDEZVOUS_CYCLE, "cycle"));
        assert_eq!(
            report.static_verdict().unwrap().code,
            codes::RENDEZVOUS_CYCLE
        );
        assert_eq!(report.first_error().unwrap().code, codes::RENDEZVOUS_CYCLE);
        assert!(report.has_blocking());
    }
}
