//! `gals-lint`: the workspace determinism lint.
//!
//! A hand-rolled, offline line scan over the workspace's `.rs` files (no
//! rustc plugin, no syn) enforcing repo contracts clippy cannot express:
//!
//! - **GL101** — no wall-clock reads (`Instant::now`, `SystemTime`) in
//!   simulation crates; simulated time is the only time.
//! - **GL102** — no ambient randomness (`thread_rng`, `from_entropy`,
//!   `rand::random`) in simulation crates; all streams are seeded.
//! - **GL103** — no `HashMap`/`HashSet` in crates whose state feeds
//!   reports, derived tables or JSON (iteration order is unspecified and
//!   breaks bit-identity); lookup-only uses need a justified waiver.
//! - **GL104** — no floating-point accumulation in cycle/instruction
//!   *counting* paths (counts are integers; only derived metrics float).
//! - **GL105** — no `std::process::exit` outside `crates/bench` bins
//!   (library code must return errors, not kill the process).
//!
//! Waivers live in `analysis/lint_allow.toml` at the workspace root and
//! carry a mandatory justification; a waiver that matches nothing is
//! itself an error, so the allowlist can never rot.
//!
//! The scanner's own needles are assembled from split tokens at runtime
//! so this file (and the fixtures manifest) never contains a pattern
//! that would flag itself.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Simulation crates: deterministic, no wall clock, no ambient entropy,
/// integer event counts.
const SIM_CRATES: [&str; 7] = [
    "isa", "events", "clocks", "uarch", "power", "workload", "core",
];

/// Crates whose data structures end up in reports/JSON (GL103 scope):
/// the simulation crates plus the sweep harness and the bench CLI.
const OUTPUT_CRATES: [&str; 9] = [
    "isa", "events", "clocks", "uarch", "power", "workload", "core", "sweep", "bench",
];

/// One lint finding at a specific file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule code, e.g. `"GL103"`.
    pub rule: &'static str,
    /// What was matched and why it matters.
    pub message: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// One allowlist entry: waives every finding of `rule` in `path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Workspace-relative path the waiver applies to.
    pub path: String,
    /// Rule code being waived.
    pub rule: String,
    /// Mandatory human-readable reason; empty is a parse error.
    pub justification: String,
}

/// Result of a full-tree lint run.
#[derive(Debug, Clone, Default)]
pub struct LintOutcome {
    /// Unwaived findings (the build-breaking set).
    pub findings: Vec<LintFinding>,
    /// Waivers that matched no finding — stale entries, also breaking.
    pub stale_waivers: Vec<Waiver>,
    /// How many findings were suppressed by waivers.
    pub waived: usize,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl LintOutcome {
    /// True when the tree is clean: no findings, no stale waivers.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.stale_waivers.is_empty()
    }
}

/// Crate name for `crates/<name>/...` paths.
fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
}

/// Needles are split so the scanner never matches its own source.
fn needle(parts: &[&str]) -> String {
    parts.concat()
}

/// Scans one file's source. `rel` must be the workspace-relative path
/// with `/` separators — it selects which rules apply. Pure function so
/// fixtures can be tested under a pretend path.
pub fn scan_file(rel: &str, source: &str) -> Vec<LintFinding> {
    let krate = crate_of(rel);
    let in_sim = krate.is_some_and(|k| SIM_CRATES.contains(&k));
    let in_output = krate.is_some_and(|k| OUTPUT_CRATES.contains(&k));
    let exit_banned = krate != Some("bench");

    let wall_clock = [needle(&["Instant", "::now"]), needle(&["System", "Time"])];
    let entropy = [
        needle(&["thread", "_rng"]),
        needle(&["from_", "entropy"]),
        needle(&["rand::", "random"]),
    ];
    let hashed = [needle(&["Hash", "Map"]), needle(&["Hash", "Set"])];
    let exit = needle(&["process", "::exit"]);
    let test_gate = needle(&["#[cfg", "(test)]"]);

    let mut out = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let trimmed = raw.trim_start();
        // Repo convention: the `#[cfg(test)]` module is the tail of the
        // file, so everything after the gate is test-only and exempt.
        if trimmed.starts_with(&test_gate) {
            break;
        }
        let line = strip_line_comment(raw);
        let lineno = i + 1;
        if in_sim {
            for n in &wall_clock {
                if line.contains(n.as_str()) {
                    out.push(LintFinding {
                        path: rel.to_string(),
                        line: lineno,
                        rule: "GL101",
                        message: format!(
                            "wall-clock read `{n}` in a simulation crate; \
                             simulated time is the only time source"
                        ),
                    });
                }
            }
            for n in &entropy {
                if line.contains(n.as_str()) {
                    out.push(LintFinding {
                        path: rel.to_string(),
                        line: lineno,
                        rule: "GL102",
                        message: format!(
                            "ambient randomness `{n}` in a simulation crate; \
                             every stream must be explicitly seeded"
                        ),
                    });
                }
            }
            out.extend(scan_float_counting(rel, lineno, line));
        }
        if in_output {
            for n in &hashed {
                if line.contains(n.as_str()) {
                    out.push(LintFinding {
                        path: rel.to_string(),
                        line: lineno,
                        rule: "GL103",
                        message: format!(
                            "`{n}` in an output-feeding crate: iteration order is \
                             unspecified and breaks bit-identity; use a sorted/indexed \
                             structure, or waive with a lookup-only justification"
                        ),
                    });
                }
            }
        }
        if exit_banned && line.contains(exit.as_str()) {
            out.push(LintFinding {
                path: rel.to_string(),
                line: lineno,
                rule: "GL105",
                message: "process exit outside crates/bench; library code must \
                          return errors, not kill the process"
                    .to_string(),
            });
        }
    }
    out
}

/// GL104: float accumulation/declaration in counting paths. Two
/// matchers: `x += <float literal>` and a `f64`/`f32` binding whose
/// identifier names a count (`cycle`, `count`, `committed`, `fetched`).
fn scan_float_counting(rel: &str, lineno: usize, line: &str) -> Vec<LintFinding> {
    let mut out = Vec::new();
    if let Some(pos) = line.find("+=") {
        let rhs = line[pos + 2..].split(';').next().unwrap_or("").trim();
        if is_float_literal(rhs) {
            out.push(LintFinding {
                path: rel.to_string(),
                line: lineno,
                rule: "GL104",
                message: format!(
                    "floating-point accumulation `+= {rhs}`: event counts are \
                     integers (derive ratios at report time)"
                ),
            });
        }
    }
    for ty in [": f64", ": f32"] {
        let mut start = 0;
        while let Some(found) = line[start..].find(ty) {
            let at = start + found;
            let ident: String = line[..at]
                .chars()
                .rev()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            let lower = ident.to_ascii_lowercase();
            if ["cycle", "count", "committed", "fetched"]
                .iter()
                .any(|k| lower.contains(k))
            {
                out.push(LintFinding {
                    path: rel.to_string(),
                    line: lineno,
                    rule: "GL104",
                    message: format!(
                        "count-like binding `{ident}{ty}`: cycle/instruction counts \
                         are integers (the integer-count invariant)"
                    ),
                });
            }
            start = at + ty.len();
        }
    }
    out
}

/// `"1.0"`, `"0.5"`, `"1_000.25"` — digits and underscores around one dot.
fn is_float_literal(s: &str) -> bool {
    let mut dots = 0;
    if s.is_empty() {
        return false;
    }
    for c in s.chars() {
        match c {
            '.' => dots += 1,
            '0'..='9' | '_' => {}
            _ => return false,
        }
    }
    dots == 1 && !s.starts_with('.') && !s.ends_with('.')
}

/// Cuts a line at its `//` comment. Naive about `//` inside string
/// literals, which the workspace's style makes a non-issue.
fn strip_line_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Parses `analysis/lint_allow.toml` (a deliberate TOML subset:
/// `[[allow]]` tables with `path`/`rule`/`justification` string keys,
/// `#` comments, blank lines).
pub fn parse_allowlist(text: &str) -> Result<Vec<Waiver>, String> {
    let mut out: Vec<Waiver> = Vec::new();
    let mut current: Option<Waiver> = None;
    let finalize = |w: Option<Waiver>, out: &mut Vec<Waiver>| -> Result<(), String> {
        if let Some(w) = w {
            if w.path.is_empty() || w.rule.is_empty() {
                return Err(format!(
                    "allowlist entry missing path or rule (path={:?}, rule={:?})",
                    w.path, w.rule
                ));
            }
            if w.justification.trim().is_empty() {
                return Err(format!(
                    "allowlist entry for {} / {} has no justification; every waiver \
                     must say why it is sound",
                    w.path, w.rule
                ));
            }
            if !w.rule.starts_with("GL") || !w.rule[2..].chars().all(|c| c.is_ascii_digit()) {
                return Err(format!("allowlist rule {:?} is not a GL code", w.rule));
            }
            out.push(w);
        }
        Ok(())
    };
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            finalize(current.take(), &mut out)?;
            current = Some(Waiver {
                path: String::new(),
                rule: String::new(),
                justification: String::new(),
            });
            continue;
        }
        let entry = current
            .as_mut()
            .ok_or_else(|| format!("line {}: key outside an [[allow]] table", i + 1))?;
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = \"value\"`", i + 1))?;
        let value = value.trim();
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("line {}: value must be a double-quoted string", i + 1))?;
        match key.trim() {
            "path" => entry.path = value.to_string(),
            "rule" => entry.rule = value.to_string(),
            "justification" => entry.justification = value.to_string(),
            other => return Err(format!("line {}: unknown key {other:?}", i + 1)),
        }
    }
    finalize(current.take(), &mut out)?;
    Ok(out)
}

/// Directory names never scanned: build output, VCS, the offline stub
/// crates, test/bench/example code, and lint fixtures themselves.
const SKIP_DIRS: [&str; 7] = [
    "target", ".git", "stubs", "fixtures", "tests", "benches", "examples",
];

/// Collects workspace-relative paths of all lintable `.rs` files.
fn collect_rs_files(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut stack = vec![PathBuf::new()];
    while let Some(rel_dir) = stack.pop() {
        let dir = root.join(&rel_dir);
        let entries = fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let rel = if rel_dir.as_os_str().is_empty() {
                PathBuf::from(&name)
            } else {
                rel_dir.join(&name)
            };
            let ftype = entry
                .file_type()
                .map_err(|e| format!("{}: {e}", rel.display()))?;
            if ftype.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) {
                    stack.push(rel);
                }
            } else if name.ends_with(".rs") {
                let unix: Vec<String> = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect();
                out.push(unix.join("/"));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints the whole workspace rooted at `root`, applying the allowlist at
/// `<root>/analysis/lint_allow.toml` when present.
pub fn lint_tree(root: &Path) -> Result<LintOutcome, String> {
    let allow_path = root.join("analysis").join("lint_allow.toml");
    let waivers = match fs::read_to_string(&allow_path) {
        Ok(text) => parse_allowlist(&text).map_err(|e| format!("{}: {e}", allow_path.display()))?,
        Err(_) => Vec::new(),
    };
    let mut outcome = LintOutcome::default();
    let mut used = vec![false; waivers.len()];
    for rel in collect_rs_files(root)? {
        let source = fs::read_to_string(root.join(&rel)).map_err(|e| format!("{rel}: {e}"))?;
        outcome.files_scanned += 1;
        'finding: for finding in scan_file(&rel, &source) {
            for (wi, w) in waivers.iter().enumerate() {
                if w.path == finding.path && w.rule == finding.rule {
                    used[wi] = true;
                    outcome.waived += 1;
                    continue 'finding;
                }
            }
            outcome.findings.push(finding);
        }
    }
    outcome.stale_waivers = waivers
        .into_iter()
        .zip(used)
        .filter_map(|(w, u)| (!u).then_some(w))
        .collect();
    Ok(outcome)
}

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_flags_only_in_sim_crates() {
        let bad = format!("let t = {}();", needle(&["Instant", "::now"]));
        let hits = scan_file("crates/core/src/sim.rs", &bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "GL101");
        assert_eq!(hits[0].line, 1);
        assert!(scan_file("crates/bench/src/lib.rs", &bad).is_empty());
    }

    #[test]
    fn entropy_flags_in_sim_crates() {
        let bad = format!("let mut rng = {}();", needle(&["thread", "_rng"]));
        let hits = scan_file("crates/clocks/src/domain.rs", &bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "GL102");
    }

    #[test]
    fn hashed_collections_flag_in_output_crates_only() {
        let bad = format!("use std::collections::{};", needle(&["Hash", "Map"]));
        assert_eq!(scan_file("crates/sweep/src/lib.rs", &bad)[0].rule, "GL103");
        assert_eq!(
            scan_file("crates/events/src/engine.rs", &bad)[0].rule,
            "GL103"
        );
        assert!(scan_file("crates/analysis/src/lint.rs", &bad).is_empty());
    }

    #[test]
    fn float_accumulation_and_count_bindings_flag_gl104() {
        let hits = scan_file("crates/uarch/src/rob.rs", "self.cycles += 1.0;");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "GL104");
        let hits = scan_file("crates/power/src/acc.rs", "pub committed_count: f64,");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "GL104");
        // Integer accumulation and non-count floats are fine.
        assert!(scan_file("crates/uarch/src/rob.rs", "self.cycles += 1;").is_empty());
        assert!(scan_file("crates/power/src/acc.rs", "pub slowdown: f64,").is_empty());
    }

    #[test]
    fn process_exit_is_fine_only_in_bench() {
        let bad = format!("std::{}(2);", needle(&["process", "::exit"]));
        assert_eq!(scan_file("crates/core/src/sim.rs", &bad)[0].rule, "GL105");
        assert_eq!(scan_file("src/lib.rs", &bad)[0].rule, "GL105");
        assert!(scan_file("crates/bench/src/bin/sweep.rs", &bad).is_empty());
    }

    #[test]
    fn comments_and_test_modules_are_exempt() {
        let gate = needle(&["#[cfg", "(test)]"]);
        let n = needle(&["Instant", "::now"]);
        let source = format!("// {n}\nlet a = 1;\n{gate}\nmod tests {{ {n} }}\n");
        assert!(scan_file("crates/core/src/sim.rs", &source).is_empty());
    }

    #[test]
    fn allowlist_roundtrip_and_rejections() {
        let good = "# comment\n[[allow]]\npath = \"crates/events/src/engine.rs\"\n\
                    rule = \"GL103\"\njustification = \"lookup only\"\n";
        let waivers = parse_allowlist(good).unwrap();
        assert_eq!(waivers.len(), 1);
        assert_eq!(waivers[0].rule, "GL103");

        let missing_just = "[[allow]]\npath = \"a.rs\"\nrule = \"GL103\"\n";
        assert!(parse_allowlist(missing_just)
            .unwrap_err()
            .contains("justification"));
        let empty_just = "[[allow]]\npath = \"a.rs\"\nrule = \"GL103\"\njustification = \"  \"\n";
        assert!(parse_allowlist(empty_just).is_err());
        let bad_rule = "[[allow]]\npath = \"a.rs\"\nrule = \"XX9\"\njustification = \"x\"\n";
        assert!(parse_allowlist(bad_rule).unwrap_err().contains("GL code"));
        assert!(parse_allowlist("path = \"a\"\n").is_err());
    }

    #[test]
    fn float_literal_detector_is_strict() {
        assert!(is_float_literal("1.0"));
        assert!(is_float_literal("0.25"));
        assert!(is_float_literal("1_000.5"));
        assert!(!is_float_literal("1"));
        assert!(!is_float_literal("delta"));
        assert!(!is_float_literal("1.0 * x"));
        assert!(!is_float_literal(".5"));
        assert!(!is_float_literal("5."));
        assert!(!is_float_literal(""));
    }
}
