//! Inter-domain communication graph and its structural verifier.
//!
//! The graph is plain data — node names, scheduler priorities, clock
//! periods, and edges carrying channel capacities and rendezvous flags —
//! so any front end (today `gals-core`'s five-domain pipeline, tomorrow
//! the many-domain meshes of ROADMAP item 5) can build one and run the
//! same checks. [`CommGraph::verify`] performs the purely structural
//! passes: rendezvous-cycle detection (GA001), wedged-producer
//! propagation (GA002), hold-and-wait analysis over port groups (GA003),
//! distinct-priority verification (GA004), per-edge capacity sanity
//! (GA005) and data-path reachability (GA008). Parameter-range checks
//! that need no topology live in [`crate::checks`].

use crate::finding::{codes, AnalysisReport, Finding};

/// What an edge carries; only `Data` edges define forward reachability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Instruction flow (fetch→decode, dispatch): defines reachability.
    Data,
    /// Writeback/completion results flowing back up the pipe.
    Completion,
    /// Cross-cluster operand wakeup links.
    Wakeup,
    /// Branch-redirect side channel back to fetch.
    Redirect,
}

impl EdgeKind {
    /// Short label used in finding messages.
    pub fn as_str(self) -> &'static str {
        match self {
            EdgeKind::Data => "data",
            EdgeKind::Completion => "completion",
            EdgeKind::Wakeup => "wakeup",
            EdgeKind::Redirect => "redirect",
        }
    }
}

/// One clock domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Human-readable domain name used in finding messages.
    pub name: String,
    /// Scheduler priority (same-edge tie-break); must be unique.
    pub priority: i32,
    /// Clock period in femtoseconds (informational; 0 = unknown).
    pub period_fs: u64,
    /// Statically known to stop producing (e.g. an armed chaos wedge).
    pub wedged: bool,
}

/// A set of ports one producer claims together for a single transaction.
/// `atomic` means the claim is all-or-nothing (the PR 5 writeback
/// pattern); a non-atomic multi-port claim is hold-and-wait (GA003).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortGroup {
    /// Label used in finding messages, e.g. `"writeback(int)"`.
    pub label: String,
    /// Whether the group's ports are claimed atomically.
    pub atomic: bool,
}

/// One directed channel between two domains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Producer node index.
    pub from: usize,
    /// Consumer node index.
    pub to: usize,
    /// Buffer capacity in entries (1 for a rendezvous port).
    pub capacity: usize,
    /// True for an unbuffered rendezvous (pausible-clock) port: the
    /// producer blocks until the consumer takes the transfer.
    pub rendezvous: bool,
    /// True when the consumer drains this channel unconditionally every
    /// ready cycle (completion/wakeup/redirect sinks): the producer can
    /// stall on it transiently but never as part of a sustained wait.
    pub drained_unconditionally: bool,
    /// What the edge carries.
    pub kind: EdgeKind,
    /// Port group this edge is claimed under, if any.
    pub group: Option<usize>,
}

/// The whole inter-domain communication graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommGraph {
    /// Domains, in insertion order (order fixes finding determinism).
    pub nodes: Vec<Node>,
    /// Channels.
    pub edges: Vec<Edge>,
    /// Port groups referenced by `Edge::group`.
    pub groups: Vec<PortGroup>,
    /// Node where instructions enter (reachability root), default 0.
    pub entry: usize,
}

impl CommGraph {
    /// An empty graph.
    pub fn new() -> Self {
        CommGraph::default()
    }

    /// Adds a domain and returns its index.
    pub fn add_node(&mut self, name: impl Into<String>, priority: i32, period_fs: u64) -> usize {
        self.nodes.push(Node {
            name: name.into(),
            priority,
            period_fs,
            wedged: false,
        });
        self.nodes.len() - 1
    }

    /// Marks a domain as statically wedged (it will stop producing).
    pub fn set_wedged(&mut self, node: usize) {
        self.nodes[node].wedged = true;
    }

    /// Adds a port group and returns its index.
    pub fn add_group(&mut self, label: impl Into<String>, atomic: bool) -> usize {
        self.groups.push(PortGroup {
            label: label.into(),
            atomic,
        });
        self.groups.len() - 1
    }

    /// Adds a channel.
    pub fn add_edge(&mut self, edge: Edge) {
        self.edges.push(edge);
    }

    /// Runs every structural check and returns the combined report.
    pub fn verify(&self) -> AnalysisReport {
        let mut report = AnalysisReport::new();
        self.check_priorities(&mut report);
        self.check_capacities(&mut report);
        self.check_hold_and_wait(&mut report);
        self.check_rendezvous_cycles(&mut report);
        self.check_wedged(&mut report);
        self.check_reachability(&mut report);
        report
    }

    /// GA004: every domain must own a distinct scheduler priority,
    /// otherwise same-edge event order is unspecified. This is the
    /// static twin of the always-on `add_clock` assert.
    fn check_priorities(&self, report: &mut AnalysisReport) {
        for (i, a) in self.nodes.iter().enumerate() {
            for b in self.nodes.iter().skip(i + 1) {
                if a.priority == b.priority {
                    report.push(Finding::error(
                        codes::DUPLICATE_CLOCK_PRIORITY,
                        format!(
                            "domains {:?} and {:?} share scheduler priority {}; \
                             same-edge event order would be unspecified",
                            a.name, b.name, a.priority
                        ),
                    ));
                }
            }
        }
    }

    /// GA005: capacities must be positive, and a rendezvous port holds
    /// exactly one in-flight transfer by construction.
    fn check_capacities(&self, report: &mut AnalysisReport) {
        for e in &self.edges {
            let label = self.edge_label(e);
            if e.capacity == 0 {
                report.push(Finding::error(
                    codes::CHANNEL_CAPACITY,
                    format!("channel {label} has capacity 0; nothing can ever transfer"),
                ));
            } else if e.rendezvous && e.capacity != 1 {
                report.push(Finding::error(
                    codes::CHANNEL_CAPACITY,
                    format!(
                        "rendezvous channel {label} declares capacity {}; \
                         an unbuffered port holds exactly 1 in-flight transfer",
                        e.capacity
                    ),
                ));
            }
        }
    }

    /// GA003: a port group claimed non-atomically with two or more
    /// rendezvous members is hold-and-wait — the producer can block on
    /// one port while holding another, and two such producers deadlock
    /// under contention. Ungrouped edges are claimed one transaction at
    /// a time and are safe by construction.
    fn check_hold_and_wait(&self, report: &mut AnalysisReport) {
        for (gi, group) in self.groups.iter().enumerate() {
            if group.atomic {
                continue;
            }
            let members: Vec<&Edge> = self
                .edges
                .iter()
                .filter(|e| e.group == Some(gi) && e.rendezvous)
                .collect();
            if members.len() >= 2 {
                let ports: Vec<String> = members.iter().map(|e| self.edge_label(e)).collect();
                report.push(Finding::error(
                    codes::HOLD_AND_WAIT,
                    format!(
                        "port group {:?} claims {} rendezvous ports ({}) without an \
                         atomic all-or-nothing claim: hold-and-wait deadlocks under \
                         contention",
                        group.label,
                        members.len(),
                        ports.join(", ")
                    ),
                ));
            }
        }
    }

    /// GA001: a cycle of rendezvous edges none of which is drained
    /// unconditionally is a circular wait no runtime mechanism breaks.
    /// Edges whose consumer always drains them cannot sustain a wait,
    /// so they are excluded from the wait graph.
    fn check_rendezvous_cycles(&self, report: &mut AnalysisReport) {
        // Wait graph: producer -> consumer for each sustained-wait edge.
        let n = self.nodes.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut self_loop = vec![false; n];
        for e in &self.edges {
            if e.rendezvous && !e.drained_unconditionally {
                if e.from == e.to {
                    self_loop[e.from] = true;
                } else {
                    adj[e.from].push(e.to);
                }
            }
        }
        for scc in strongly_connected(&adj)
            .into_iter()
            .filter(|scc| scc.len() >= 2)
        {
            let names: Vec<&str> = scc.iter().map(|&v| self.nodes[v].name.as_str()).collect();
            report.push(Finding::error(
                codes::RENDEZVOUS_CYCLE,
                format!(
                    "rendezvous wait cycle among domains [{}]: every member blocks \
                     on the next with no unconditional drain to break the wait",
                    names.join(", ")
                ),
            ));
        }
        for (v, node) in self.nodes.iter().enumerate() {
            if self_loop[v] {
                report.push(Finding::error(
                    codes::RENDEZVOUS_CYCLE,
                    format!(
                        "domain {:?} rendezvous-blocks on itself: a self-wait can \
                         never complete",
                        node.name
                    ),
                ));
            }
        }
    }

    /// GA002: a statically wedged producer starves every domain behind a
    /// blocking edge from it; the runtime watchdog will fire after
    /// burning its whole window. Warning, not error: the run is legal,
    /// just doomed.
    fn check_wedged(&self, report: &mut AnalysisReport) {
        for node in self.nodes.iter().filter(|n| n.wedged) {
            report.push(Finding::warning(
                codes::WEDGED_PRODUCER,
                format!(
                    "domain {:?} is statically wedged (stops producing); downstream \
                     domains will starve and the watchdog will end the run",
                    node.name
                ),
            ));
        }
    }

    /// GA008: a domain no instruction can reach along data edges from
    /// the entry node does no work; almost certainly a topology bug.
    fn check_reachability(&self, report: &mut AnalysisReport) {
        let n = self.nodes.len();
        if n == 0 || self.entry >= n {
            return;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![self.entry];
        seen[self.entry] = true;
        while let Some(v) = stack.pop() {
            for e in &self.edges {
                if e.from == v && e.kind == EdgeKind::Data && !seen[e.to] {
                    seen[e.to] = true;
                    stack.push(e.to);
                }
            }
        }
        for (v, node) in self.nodes.iter().enumerate() {
            if !seen[v] {
                report.push(Finding::warning(
                    codes::UNREACHABLE_DOMAIN,
                    format!(
                        "domain {:?} is unreachable along data edges from {:?}; \
                         it can never receive work",
                        node.name, self.nodes[self.entry].name
                    ),
                ));
            }
        }
    }

    /// `"fetch->decode (data)"` style label for finding messages.
    fn edge_label(&self, e: &Edge) -> String {
        format!(
            "{}->{} ({})",
            self.nodes[e.from].name,
            self.nodes[e.to].name,
            e.kind.as_str()
        )
    }
}

/// Kosaraju's algorithm; returns strongly connected components in a
/// deterministic order (by smallest member, members ascending).
fn strongly_connected(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, outs) in adj.iter().enumerate() {
        for &w in outs {
            rev[w].push(v);
        }
    }
    // First pass: finish order on the forward graph (iterative DFS).
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for root in 0..n {
        if seen[root] {
            continue;
        }
        let mut stack = vec![(root, 0usize)];
        seen[root] = true;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            if *i < adj[v].len() {
                let w = adj[v][*i];
                *i += 1;
                if !seen[w] {
                    seen[w] = true;
                    stack.push((w, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }
    // Second pass: components on the reverse graph in reverse finish order.
    let mut comp = vec![usize::MAX; n];
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    for &root in order.iter().rev() {
        if comp[root] != usize::MAX {
            continue;
        }
        let id = sccs.len();
        let mut members = vec![root];
        comp[root] = id;
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            for &w in &rev[v] {
                if comp[w] == usize::MAX {
                    comp[w] = id;
                    members.push(w);
                    stack.push(w);
                }
            }
        }
        members.sort_unstable();
        sccs.push(members);
    }
    sccs.sort_by_key(|scc| scc[0]);
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-node helper: `a -> b` rendezvous, drain configurable.
    fn two_node(drained_ab: bool, drained_ba: bool) -> CommGraph {
        let mut g = CommGraph::new();
        let a = g.add_node("a", 0, 1_000_000);
        let b = g.add_node("b", 1, 1_000_000);
        for (from, to, drained) in [(a, b, drained_ab), (b, a, drained_ba)] {
            g.add_edge(Edge {
                from,
                to,
                capacity: 1,
                rendezvous: true,
                drained_unconditionally: drained,
                kind: EdgeKind::Data,
                group: None,
            });
        }
        g
    }

    fn codes_of(report: &AnalysisReport) -> Vec<&'static str> {
        report.findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn an_undrained_rendezvous_cycle_is_ga001() {
        let report = two_node(false, false).verify();
        assert_eq!(codes_of(&report), vec![codes::RENDEZVOUS_CYCLE]);
        assert!(report.findings[0].message.contains("a, b"));
    }

    #[test]
    fn one_unconditional_drain_breaks_the_cycle() {
        assert!(two_node(false, true).verify().is_clean());
        assert!(two_node(true, false).verify().is_clean());
    }

    #[test]
    fn a_rendezvous_self_loop_is_ga001() {
        let mut g = CommGraph::new();
        let a = g.add_node("solo", 0, 1);
        g.add_edge(Edge {
            from: a,
            to: a,
            capacity: 1,
            rendezvous: true,
            drained_unconditionally: false,
            kind: EdgeKind::Data,
            group: None,
        });
        let report = g.verify();
        assert_eq!(codes_of(&report), vec![codes::RENDEZVOUS_CYCLE]);
        assert!(report.findings[0].message.contains("itself"));
    }

    #[test]
    fn buffered_cycles_are_fine() {
        let mut g = two_node(false, false);
        for e in &mut g.edges {
            e.rendezvous = false;
            e.capacity = 4;
        }
        assert!(g.verify().is_clean());
    }

    #[test]
    fn nonatomic_multiport_claim_is_ga003_and_atomic_is_clean() {
        for (atomic, expect_clean) in [(true, true), (false, false)] {
            let mut g = CommGraph::new();
            let p = g.add_node("producer", 0, 1);
            let c1 = g.add_node("sink1", 1, 1);
            let c2 = g.add_node("sink2", 2, 1);
            let grp = g.add_group("writeback", atomic);
            for to in [c1, c2] {
                g.add_edge(Edge {
                    from: p,
                    to,
                    capacity: 1,
                    rendezvous: true,
                    drained_unconditionally: true,
                    kind: EdgeKind::Data,
                    group: Some(grp),
                });
            }
            let report = g.verify();
            if expect_clean {
                assert!(report.is_clean(), "{report:?}");
            } else {
                assert_eq!(codes_of(&report), vec![codes::HOLD_AND_WAIT]);
            }
        }
    }

    #[test]
    fn duplicate_priorities_are_ga004() {
        let mut g = CommGraph::new();
        let a = g.add_node("a", 3, 1);
        let b = g.add_node("b", 3, 1);
        g.add_edge(Edge {
            from: a,
            to: b,
            capacity: 4,
            rendezvous: false,
            drained_unconditionally: false,
            kind: EdgeKind::Data,
            group: None,
        });
        let report = g.verify();
        assert_eq!(codes_of(&report), vec![codes::DUPLICATE_CLOCK_PRIORITY]);
    }

    #[test]
    fn capacity_zero_and_fat_rendezvous_are_ga005() {
        let mut g = CommGraph::new();
        let a = g.add_node("a", 0, 1);
        let b = g.add_node("b", 1, 1);
        g.add_edge(Edge {
            from: a,
            to: b,
            capacity: 0,
            rendezvous: false,
            drained_unconditionally: false,
            kind: EdgeKind::Data,
            group: None,
        });
        g.add_edge(Edge {
            from: a,
            to: b,
            capacity: 2,
            rendezvous: true,
            drained_unconditionally: true,
            kind: EdgeKind::Completion,
            group: None,
        });
        let report = g.verify();
        assert_eq!(
            codes_of(&report),
            vec![codes::CHANNEL_CAPACITY, codes::CHANNEL_CAPACITY]
        );
    }

    #[test]
    fn a_wedged_node_is_ga002() {
        let mut g = two_node(false, true);
        g.set_wedged(1);
        let report = g.verify();
        assert_eq!(codes_of(&report), vec![codes::WEDGED_PRODUCER]);
        assert!(report.findings[0].message.contains("\"b\""));
    }

    #[test]
    fn a_domain_off_the_data_path_is_ga008() {
        let mut g = CommGraph::new();
        let a = g.add_node("a", 0, 1);
        let b = g.add_node("b", 1, 1);
        let c = g.add_node("island", 2, 1);
        g.add_edge(Edge {
            from: a,
            to: b,
            capacity: 4,
            rendezvous: false,
            drained_unconditionally: false,
            kind: EdgeKind::Data,
            group: None,
        });
        // A completion edge does not make `island` reachable.
        g.add_edge(Edge {
            from: c,
            to: a,
            capacity: 4,
            rendezvous: false,
            drained_unconditionally: true,
            kind: EdgeKind::Completion,
            group: None,
        });
        let report = g.verify();
        assert_eq!(codes_of(&report), vec![codes::UNREACHABLE_DOMAIN]);
        assert!(report.findings[0].message.contains("island"));
    }

    #[test]
    fn scc_finds_the_three_cycle_once() {
        // a -> b -> c -> a plus a dangling d.
        let adj = vec![vec![1], vec![2], vec![0], vec![]];
        let sccs = strongly_connected(&adj);
        assert!(sccs.contains(&vec![0, 1, 2]));
        assert!(sccs.contains(&vec![3]));
    }
}
