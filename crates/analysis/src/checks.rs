//! Topology-free parameter checks: pure functions over scalar config
//! values, shared by `gals_core::analyze` and `RunSpec::static_findings`
//! (which must vet DVFS points *before* constructing a config, because
//! the clock constructors assert on out-of-range factors).

use crate::finding::{codes, Finding};

/// GA005: main (data) and side (completion/wakeup) channel capacities.
/// Mirrors the invariants `ProcessorConfig::validate` enforces: the main
/// channels must cover dispatch width (≥ 2), the side channels must
/// absorb a full writeback burst (≥ 16).
pub fn channel_capacities(main: usize, side: usize) -> Vec<Finding> {
    let mut out = Vec::new();
    if main < 2 {
        out.push(Finding::error(
            codes::CHANNEL_CAPACITY,
            format!("channel capacity must be at least 2, got {main}"),
        ));
    }
    if side < 16 {
        out.push(Finding::error(
            codes::CHANNEL_CAPACITY,
            format!("side channel capacity must be at least 16, got {side}"),
        ));
    }
    out
}

/// GA007: `fifo_sync_periods` models a synchronizer latency of 0..=8
/// consumer periods; anything outside is a config typo.
pub fn fifo_sync(periods: f64) -> Option<Finding> {
    if periods.is_finite() && (0.0..=8.0).contains(&periods) {
        None
    } else {
        Some(Finding::error(
            codes::SYNC_RANGE,
            format!("fifo_sync_periods must be within [0, 8], got {periods}"),
        ))
    }
}

/// GA006: per-domain DVFS slowdowns must be finite and ≥ 1.0 (the model
/// only slows clocks down, never overclocks). This runs before any
/// `ClockSpec::slowed` call, turning a would-be assert into a finding.
pub fn dvfs(slowdown: &[f64; 5]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, &f) in slowdown.iter().enumerate() {
        if !f.is_finite() || f < 1.0 {
            out.push(Finding::error(
                codes::DVFS_RANGE,
                format!("dvfs slowdown for domain {i} must be a finite factor >= 1.0, got {f}"),
            ));
        }
    }
    out
}

/// GA006: a single-clock (synchronous) machine cannot scale domains
/// independently; a non-uniform plan there is a modeling error.
pub fn dvfs_uniform_on_sync(is_synchronous: bool, slowdown: &[f64; 5]) -> Option<Finding> {
    if is_synchronous && slowdown.iter().any(|&f| f != slowdown[0]) {
        Some(Finding::error(
            codes::DVFS_RANGE,
            "a synchronous machine cannot scale domains independently; \
             use a uniform dvfs plan",
        ))
    } else {
        None
    }
}

/// GA009: budget sanity. A zero instruction budget runs nothing (warn);
/// a disabled watchdog on a machine with blocking (rendezvous) transfers
/// means a wedge hangs forever instead of producing a deadlock report
/// (info on buffered machines, warning on blocking ones).
pub fn budget(max_insts: u64, watchdog_cycles: u64, blocking_transfers: bool) -> Vec<Finding> {
    let mut out = Vec::new();
    if max_insts == 0 {
        out.push(Finding::warning(
            codes::BUDGET_SANITY,
            "instruction budget is 0; the run will end before any work",
        ));
    }
    if watchdog_cycles == 0 {
        let msg = "watchdog is disabled (watchdog_cycles = 0); a wedged run \
                   will hang instead of producing a deadlock report";
        out.push(if blocking_transfers {
            Finding::warning(codes::BUDGET_SANITY, msg)
        } else {
            Finding::info(codes::BUDGET_SANITY, msg)
        });
    }
    out
}

/// GA002: an armed `withhold_writeback` wedge below the instruction
/// budget guarantees the ROB head at `seq` never retires — commit stops
/// there and the watchdog ends the run. (With `seq` at or above the
/// budget the wedge can never trigger, so nothing is flagged.)
pub fn wedge(withheld_seq: u64, max_insts: u64, watchdog_cycles: u64) -> Option<Finding> {
    if withheld_seq < max_insts {
        Some(Finding::warning(
            codes::WEDGED_PRODUCER,
            format!(
                "writeback withheld from seq {withheld_seq} with an instruction \
                 budget of {max_insts}: commit is guaranteed to wedge behind that \
                 seq and the watchdog will fire after {watchdog_cycles} idle cycles"
            ),
        ))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finding::Severity;

    #[test]
    fn capacities_flag_each_undersized_channel() {
        assert!(channel_capacities(12, 256).is_empty());
        assert_eq!(channel_capacities(1, 256).len(), 1);
        assert_eq!(channel_capacities(1, 8).len(), 2);
        for f in channel_capacities(0, 0) {
            assert_eq!(f.code, codes::CHANNEL_CAPACITY);
            assert_eq!(f.severity, Severity::Error);
        }
    }

    #[test]
    fn fifo_sync_window_is_zero_to_eight() {
        assert!(fifo_sync(0.0).is_none());
        assert!(fifo_sync(8.0).is_none());
        assert!(fifo_sync(1.5).is_none());
        assert_eq!(fifo_sync(-0.1).unwrap().code, codes::SYNC_RANGE);
        assert_eq!(fifo_sync(8.5).unwrap().code, codes::SYNC_RANGE);
        assert_eq!(fifo_sync(f64::NAN).unwrap().code, codes::SYNC_RANGE);
    }

    #[test]
    fn dvfs_rejects_speedups_and_nan() {
        assert!(dvfs(&[1.0; 5]).is_empty());
        assert!(dvfs(&[1.0, 2.5, 1.1, 4.0, 1.0]).is_empty());
        let bad = dvfs(&[0.5, 1.0, f64::NAN, 1.0, f64::INFINITY]);
        assert_eq!(bad.len(), 3);
        assert!(bad.iter().all(|f| f.code == codes::DVFS_RANGE));
    }

    #[test]
    fn sync_machines_need_uniform_plans() {
        assert!(dvfs_uniform_on_sync(false, &[1.0, 2.0, 1.0, 1.0, 1.0]).is_none());
        assert!(dvfs_uniform_on_sync(true, &[2.0; 5]).is_none());
        let f = dvfs_uniform_on_sync(true, &[1.0, 2.0, 1.0, 1.0, 1.0]).unwrap();
        assert_eq!(f.code, codes::DVFS_RANGE);
        assert!(f.message.contains("synchronous"));
    }

    #[test]
    fn budget_warnings_scale_with_blocking_mode() {
        assert!(budget(1_000, 200_000, false).is_empty());
        let zero = budget(0, 200_000, false);
        assert_eq!(zero[0].severity, Severity::Warning);
        assert_eq!(budget(1_000, 0, false)[0].severity, Severity::Info);
        assert_eq!(budget(1_000, 0, true)[0].severity, Severity::Warning);
    }

    #[test]
    fn a_wedge_below_budget_is_ga002() {
        let f = wedge(150, 2_000, 500).unwrap();
        assert_eq!(f.code, codes::WEDGED_PRODUCER);
        assert_eq!(f.severity, Severity::Warning);
        assert!(wedge(2_000, 2_000, 500).is_none());
        assert!(wedge(5_000, 2_000, 500).is_none());
    }
}
