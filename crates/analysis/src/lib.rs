//! # gals-analysis
//!
//! Static verification for the GALS reproduction, in two passes:
//!
//! 1. **Model-level config analysis** ([`graph`], [`checks`]): extract
//!    the inter-domain communication graph from a processor config and
//!    verify it structurally — rendezvous-cycle detection (GA001),
//!    wedged-producer propagation (GA002), hold-and-wait over port
//!    groups (GA003), distinct clock priorities (GA004), capacity/DVFS/
//!    sync/budget sanity (GA005–GA007, GA009), unreachable domains
//!    (GA008) and parameter validation (GA010). `gals_core::analyze`
//!    builds the graph; `simulate()` refuses error-level findings up
//!    front and `sweep --check` vets whole matrices without simulating.
//!
//! 2. **Source-level determinism lint** ([`lint`], `gals-lint` binary):
//!    an offline line scan enforcing the repo's determinism contracts
//!    (GL101–GL105) with a justified-waiver allowlist.
//!
//! This crate is deliberately dependency-free plain data so both the
//! simulator and future many-domain front ends can target it without
//! dependency cycles. Finding codes are stable: see `docs/ANALYSIS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checks;
pub mod finding;
pub mod graph;
pub mod lint;

pub use finding::{codes, AnalysisReport, Finding, Severity};
pub use graph::{CommGraph, Edge, EdgeKind, Node, PortGroup};
