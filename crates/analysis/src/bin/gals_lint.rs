//! `gals-lint` — the workspace determinism lint, CI-gating entry point.
//!
//! Usage: `gals-lint [--root DIR]`
//!
//! Scans every lintable `.rs` file under the workspace root (found by
//! walking up from the current directory unless `--root` is given) and
//! prints findings. Exit status: 0 clean, 1 findings or stale waivers,
//! 2 usage/setup error. See `docs/ANALYSIS.md` for the rule table and
//! the `analysis/lint_allow.toml` waiver format.

use std::path::PathBuf;
use std::process::ExitCode;

use gals_analysis::lint::{find_workspace_root, lint_tree};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("gals-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: gals-lint [--root DIR]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("gals-lint: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(dir) => dir,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("gals-lint: cannot read current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(d) => d,
                None => {
                    eprintln!(
                        "gals-lint: no workspace Cargo.toml above {}; pass --root",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    match lint_tree(&root) {
        Ok(outcome) => {
            for f in &outcome.findings {
                println!("{f}");
            }
            for w in &outcome.stale_waivers {
                println!(
                    "analysis/lint_allow.toml: stale waiver {} / {} matches no \
                     finding; remove it",
                    w.path, w.rule
                );
            }
            println!(
                "gals-lint: {} files scanned, {} findings, {} waived, {} stale waivers",
                outcome.files_scanned,
                outcome.findings.len(),
                outcome.waived,
                outcome.stale_waivers.len()
            );
            if outcome.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("gals-lint: {e}");
            ExitCode::from(2)
        }
    }
}
