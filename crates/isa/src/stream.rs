//! The architectural instruction stream: a deterministic walk of a
//! [`Program`]'s control-flow graph resolving every branch and memory
//! reference.
//!
//! This is the "golden" correct-path stream both processor models consume.
//! The front end of the simulated pipeline additionally fetches *wrong-path*
//! instructions from the static program after a misprediction; those never
//! appear here — they are squashed before retirement.

use crate::op::OpClass;
use crate::program::{BlockId, Program, EXIT_PC};

/// One dynamic (committed-path) instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct DynInst {
    /// Dynamic sequence number (0-based).
    pub seq: u64,
    /// Byte program counter.
    pub pc: u64,
    /// Owning basic block.
    pub block: BlockId,
    /// Index within the block.
    pub index: u32,
    /// Operation class (copied out of the static instruction for
    /// convenience).
    pub op: OpClass,
    /// For control transfers: whether the branch was architecturally taken.
    pub taken: bool,
    /// Architectural next PC ([`EXIT_PC`] when the program ends after this
    /// instruction).
    pub next_pc: u64,
    /// Resolved byte address for loads/stores.
    pub mem_addr: Option<u64>,
}

impl DynInst {
    /// True if this is the last architectural instruction of the program.
    #[inline]
    pub fn is_exit(&self) -> bool {
        self.next_pc == EXIT_PC
    }
}

/// Iterator over the architectural dynamic instruction stream of a program.
///
/// The stream is infinite for programs whose CFG loops forever; callers
/// bound it (`.take(n)`) or rely on loop behaviours with finite trip counts.
///
/// # Examples
///
/// ```
/// use gals_isa::{ProgramBuilder, Inst, OpClass, ArchReg, BranchBehavior, DynStream};
///
/// let mut b = ProgramBuilder::new(1);
/// let beh = b.add_branch_behavior(BranchBehavior::Loop { trip: 3 });
/// let blk = b.add_block(
///     vec![Inst::alu(OpClass::IntAlu, ArchReg::int(1), None, None),
///          Inst::branch(Some(ArchReg::int(1)), beh)],
///     None,
///     None,
/// );
/// b.set_edges(blk, Some(blk), None);
/// let program = b.build()?;
/// let stream: Vec<_> = DynStream::new(&program).collect();
/// // 3 loop iterations of 2 instructions each.
/// assert_eq!(stream.len(), 6);
/// assert!(stream.last().unwrap().is_exit());
/// # Ok::<(), gals_isa::ProgramError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DynStream<'p> {
    program: &'p Program,
    /// Current (block, index); `None` once the program has exited.
    cursor: Option<(BlockId, u32)>,
    /// Per-static-instruction dynamic execution counters (branch outcome /
    /// address stream positions).
    exec_counts: Vec<u64>,
    /// Simulated call stack of return-target blocks.
    call_stack: Vec<BlockId>,
    seq: u64,
}

impl<'p> DynStream<'p> {
    /// Starts a walk at the program's entry block.
    pub fn new(program: &'p Program) -> Self {
        DynStream {
            program,
            cursor: Some((program.entry(), 0)),
            exec_counts: vec![0; program.static_inst_count() as usize],
            call_stack: Vec::new(),
            seq: 0,
        }
    }

    /// The number of instructions produced so far.
    #[inline]
    pub fn produced(&self) -> u64 {
        self.seq
    }

    /// Current call-stack depth.
    #[inline]
    pub fn call_depth(&self) -> usize {
        self.call_stack.len()
    }
}

impl Iterator for DynStream<'_> {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        let (block, index) = self.cursor?;
        let program = self.program;
        let bb = program.block(block);
        let inst = &bb.insts[index as usize];
        let flat = program.flat_index(block, index) as usize;
        let n = self.exec_counts[flat];
        self.exec_counts[flat] += 1;

        let pc = program.pc_of(block, index);
        let seed = program.seed();

        let mut taken = false;
        let mut mem_addr = None;
        let next_pc;

        match inst.op {
            OpClass::BranchCond => {
                let behavior = program.branch_behavior(inst.branch.expect("validated"));
                taken = behavior.outcome(seed, flat as u64, n);
                next_pc = if taken {
                    program
                        .taken_target_pc(block)
                        .expect("validated taken edge")
                } else {
                    program.fallthrough_pc(block)
                };
            }
            OpClass::Jump => {
                taken = true;
                next_pc = program
                    .taken_target_pc(block)
                    .expect("validated taken edge");
            }
            OpClass::Call => {
                taken = true;
                if let Some(ret_to) = bb.fallthrough {
                    self.call_stack.push(ret_to);
                }
                next_pc = program
                    .taken_target_pc(block)
                    .expect("validated taken edge");
            }
            OpClass::Ret => {
                taken = true;
                next_pc = match self.call_stack.pop() {
                    Some(ret_block) => program.block_start_pc(ret_block),
                    // Returning with an empty stack exits the program, like
                    // returning from main.
                    None => EXIT_PC,
                };
            }
            OpClass::Load | OpClass::Store => {
                let behavior = program.mem_behavior(inst.mem.expect("validated"));
                mem_addr = Some(behavior.address(seed, flat as u64, n));
                next_pc = program.next_sequential_pc(block, index);
            }
            _ => {
                next_pc = program.next_sequential_pc(block, index);
            }
        }

        let dyn_inst = DynInst {
            seq: self.seq,
            pc,
            block,
            index,
            op: inst.op,
            taken,
            next_pc,
            mem_addr,
        };
        self.seq += 1;
        self.cursor = program.locate(next_pc).map(|(b, i, _)| (b, i));
        Some(dyn_inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{BranchBehavior, MemBehavior};
    use crate::op::ArchReg;
    use crate::program::{Inst, ProgramBuilder};

    #[test]
    fn straight_line_program_exits() {
        let mut b = ProgramBuilder::new(0);
        b.add_block(vec![Inst::nop(), Inst::nop(), Inst::nop()], None, None);
        let p = b.build().unwrap();
        let insts: Vec<_> = DynStream::new(&p).collect();
        assert_eq!(insts.len(), 3);
        assert_eq!(insts[0].pc, 0);
        assert_eq!(insts[1].pc, 4);
        assert_eq!(insts[2].pc, 8);
        assert!(insts[2].is_exit());
    }

    #[test]
    fn loop_trip_count_is_exact() {
        let mut b = ProgramBuilder::new(5);
        let beh = b.add_branch_behavior(BranchBehavior::Loop { trip: 4 });
        let blk = b.add_block(
            vec![
                Inst::alu(OpClass::IntAlu, ArchReg::int(1), None, None),
                Inst::branch(Some(ArchReg::int(1)), beh),
            ],
            None,
            None,
        );
        b.set_edges(blk, Some(blk), None);
        let p = b.build().unwrap();
        let insts: Vec<_> = DynStream::new(&p).collect();
        assert_eq!(insts.len(), 8);
        // Branch taken 3 times then not taken.
        let outcomes: Vec<bool> = insts
            .iter()
            .filter(|i| i.op.is_branch())
            .map(|i| i.taken)
            .collect();
        assert_eq!(outcomes, [true, true, true, false]);
    }

    #[test]
    fn call_and_ret_use_stack() {
        let mut b = ProgramBuilder::new(0);
        // b0: call -> b2 (function), return lands at b1, which exits.
        let b0 = b.add_block(vec![Inst::call()], None, None);
        let b1 = b.add_block(vec![Inst::nop()], None, None);
        let b2 = b.add_block(vec![Inst::nop(), Inst::ret()], None, None);
        b.set_edges(b0, Some(b2), Some(b1));
        b.set_edges(b1, None, None);
        b.set_edges(b2, None, None);
        let p = b.build().unwrap();
        let pcs: Vec<u64> = DynStream::new(&p).map(|i| i.pc).collect();
        // call @0, nop @8 (b2), ret @12, nop @4 (b1)
        assert_eq!(pcs, [0, 8, 12, 4]);
    }

    #[test]
    fn ret_with_empty_stack_exits() {
        let mut b = ProgramBuilder::new(0);
        b.add_block(vec![Inst::ret()], None, None);
        let p = b.build().unwrap();
        let insts: Vec<_> = DynStream::new(&p).collect();
        assert_eq!(insts.len(), 1);
        assert!(insts[0].is_exit());
    }

    #[test]
    fn mem_addresses_advance_per_execution() {
        let mut b = ProgramBuilder::new(0);
        let mem = b.add_mem_behavior(MemBehavior::Stride {
            base: 0x100,
            stride: 4,
            footprint: 1 << 20,
        });
        let beh = b.add_branch_behavior(BranchBehavior::Loop { trip: 3 });
        let blk = b.add_block(
            vec![
                Inst::load(ArchReg::int(1), None, mem),
                Inst::branch(Some(ArchReg::int(1)), beh),
            ],
            None,
            None,
        );
        b.set_edges(blk, Some(blk), None);
        let p = b.build().unwrap();
        let addrs: Vec<u64> = DynStream::new(&p).filter_map(|i| i.mem_addr).collect();
        assert_eq!(addrs, [0x100, 0x104, 0x108]);
    }

    #[test]
    fn stream_is_reproducible() {
        let mut b = ProgramBuilder::new(99);
        let beh = b.add_branch_behavior(BranchBehavior::TakenProb(0.5));
        let blk = b.add_block(vec![Inst::branch(None, beh)], None, None);
        let exit = b.add_block(vec![Inst::nop()], None, None);
        b.set_edges(blk, Some(blk), Some(exit));
        b.set_edges(exit, None, None);
        let p = b.build().unwrap();
        let a: Vec<_> = DynStream::new(&p).take(1000).collect();
        let b2: Vec<_> = DynStream::new(&p).take(1000).collect();
        assert_eq!(a, b2);
    }
}
