//! Functional execution of `.gasm` modules.
//!
//! [`AsmModule::execute`] interprets a parsed module with a real
//! architectural state — 32 integer registers (`r0` hardwired to zero), 32
//! FP registers, a sparse word memory and a shadow call stack — so
//! *architectural* conditional branches and effective addresses resolve
//! from computed register values rather than behaviour draws. The executed
//! outcome/address streams are recorded and compiled into the returned
//! [`Program`] as [`BranchBehavior::Trace`](crate::BranchBehavior::Trace) /
//! [`MemBehavior::Trace`](crate::MemBehavior::Trace) entries, giving a
//! program whose
//! [`DynStream`](crate::stream::DynStream) walk replays the executed
//! dynamic trace exactly — through the same stream interface the pipeline
//! models already consume for synthetic workloads. Behavioral ops embedded
//! in the module keep their declared behaviours and draw with the same
//! `(seed, flat-index, execution)` hashing as the stream walk, so mixed
//! modules stay bit-identical too.
//!
//! ## Semantics
//!
//! Integer arithmetic is 64-bit two's-complement with wrapping overflow;
//! shift counts take the low 6 bits; `div`/`rem` by zero produce `0` and
//! the dividend respectively (no traps). FP registers hold `f64`. Memory
//! maps one 64-bit cell per byte address (`ld`/`st` move whole cells at
//! the exact effective address; unwritten cells read zero). Behavioral ops
//! that name a destination write `0`/`0.0` — their latency, not their
//! value, is the point. `ret` with an empty shadow stack exits, like
//! returning from `main`.

use std::collections::BTreeMap;

use crate::asm::{AsmError, AsmModule};
use crate::op::OpClass;
use crate::program::Program;

use crate::asm::{AsmOp, BrKind, CmpKind, FpKind, IntKind};

/// Why a functional execution stopped without the program exiting.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The fuel budget ran out before the program exited: the module loops
    /// too long (or forever) for the given bound.
    OutOfFuel {
        /// Instructions executed before giving up (== the fuel budget).
        executed: u64,
    },
    /// Compiling the executed module back to a [`Program`] failed (the
    /// parser's verifier makes this unreachable for [`crate::asm::parse`]d
    /// modules; surfaced rather than panicking).
    Link(AsmError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::OutOfFuel { executed } => {
                write!(f, "out of fuel after {executed} executed instructions")
            }
            ExecError::Link(e) => write!(f, "linking executed module failed: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Number of [`OpClass`] variants (the dense stats table size).
pub const NUM_OP_CLASSES: usize = 13;

/// The operation class a parsed instruction occupies in the pipeline.
fn op_class_of(op: &AsmOp) -> OpClass {
    match op {
        AsmOp::Beh(inst) => inst.op,
        AsmOp::BehBranch { .. } | AsmOp::BrZ { .. } | AsmOp::BrCmp { .. } => OpClass::BranchCond,
        AsmOp::Jump => OpClass::Jump,
        AsmOp::Call => OpClass::Call,
        AsmOp::Ret => OpClass::Ret,
        AsmOp::Li { .. } => OpClass::IntAlu,
        AsmOp::Fli { .. } | AsmOp::FpCmp { .. } => OpClass::FpAdd,
        AsmOp::Int3 { kind, .. } | AsmOp::IntImm { kind, .. } => kind.class(),
        AsmOp::Fp3 { kind, .. } => kind.class(),
        AsmOp::MemArch { store, .. } => {
            if *store {
                OpClass::Store
            } else {
                OpClass::Load
            }
        }
    }
}

/// Dense table slot of an operation class.
fn slot(op: OpClass) -> usize {
    match op {
        OpClass::IntAlu => 0,
        OpClass::IntMul => 1,
        OpClass::IntDiv => 2,
        OpClass::FpAdd => 3,
        OpClass::FpMul => 4,
        OpClass::FpDiv => 5,
        OpClass::Load => 6,
        OpClass::Store => 7,
        OpClass::BranchCond => 8,
        OpClass::Jump => 9,
        OpClass::Call => 10,
        OpClass::Ret => 11,
        OpClass::Nop => 12,
    }
}

/// Aggregate statistics of one executed dynamic trace.
///
/// These are the quantities the synthetic [`Profile`
/// knobs](../../gals_workload/struct.WorkloadProfile.html) target — op-class
/// mix, branch bias, loop trip counts, memory share — measured from a real
/// execution, so the trace-validation suite can pin kernels against their
/// reference profiles.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceStats {
    /// Total executed (committed-path) instructions.
    pub executed: u64,
    /// Executed instructions per operation class, indexed by declaration
    /// order of [`OpClass`] (see [`NUM_OP_CLASSES`]).
    pub class_counts: [u64; NUM_OP_CLASSES],
    /// Dynamic executions of conditional branches.
    pub cond_execs: u64,
    /// How many of those resolved taken.
    pub cond_taken: u64,
    /// Dynamic executions of loop back-edges (conditional branches whose
    /// taken target does not come after their own block).
    pub backedge_execs: u64,
    /// How many back-edge executions were taken.
    pub backedge_taken: u64,
    /// Deepest shadow-call-stack depth reached.
    pub max_call_depth: u64,
}

impl TraceStats {
    /// Fraction of executed instructions in the given class.
    pub fn frac(&self, op: OpClass) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.class_counts[slot(op)] as f64 / self.executed as f64
        }
    }

    /// Conditional-branch share of the trace.
    pub fn branch_frac(&self) -> f64 {
        self.frac(OpClass::BranchCond)
    }

    /// Load share of the trace.
    pub fn load_frac(&self) -> f64 {
        self.frac(OpClass::Load)
    }

    /// Store share of the trace.
    pub fn store_frac(&self) -> f64 {
        self.frac(OpClass::Store)
    }

    /// Share of FP-cluster operations (add + mul + div).
    pub fn fp_frac(&self) -> f64 {
        self.frac(OpClass::FpAdd) + self.frac(OpClass::FpMul) + self.frac(OpClass::FpDiv)
    }

    /// Integer-multiply share of the trace.
    pub fn int_mul_frac(&self) -> f64 {
        self.frac(OpClass::IntMul)
    }

    /// Fraction of conditional-branch executions that were taken.
    pub fn taken_rate(&self) -> f64 {
        if self.cond_execs == 0 {
            0.0
        } else {
            self.cond_taken as f64 / self.cond_execs as f64
        }
    }

    /// Mean loop trip count implied by back-edge statistics: every loop
    /// completion is one not-taken back-edge execution, so the mean number
    /// of body executions per completion is `execs / (execs - taken)`
    /// (infinite if no back-edge ever fell through).
    pub fn mean_trip(&self) -> f64 {
        let exits = self.backedge_execs - self.backedge_taken;
        if exits == 0 {
            f64::INFINITY
        } else {
            self.backedge_execs as f64 / exits as f64
        }
    }
}

/// The result of functionally executing a `.gasm` module: the compiled
/// trace-replay [`Program`] plus the executed-trace statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    /// The module compiled against the recorded traces; its
    /// [`DynStream`](crate::stream::DynStream) walk replays the executed
    /// dynamic instruction sequence exactly.
    pub program: Program,
    /// Statistics of the executed trace.
    pub stats: TraceStats,
}

/// Architectural machine state of the functional executor.
struct Machine {
    /// Integer registers; `r0` reads zero and ignores writes.
    iregs: [i64; 32],
    fregs: [f64; 32],
    /// Sparse memory: one 64-bit cell per byte address.
    mem: BTreeMap<u64, u64>,
}

impl Machine {
    fn new() -> Self {
        Machine {
            iregs: [0; 32],
            fregs: [0.0; 32],
            mem: BTreeMap::new(),
        }
    }

    fn geti(&self, r: u8) -> i64 {
        if r == 0 {
            0
        } else {
            self.iregs[r as usize]
        }
    }

    fn seti(&mut self, r: u8, v: i64) {
        if r != 0 {
            self.iregs[r as usize] = v;
        }
    }

    fn int3(&self, kind: IntKind, s1: u8, s2: i64) -> i64 {
        let a = self.geti(s1);
        let b = s2;
        match kind {
            IntKind::Add => a.wrapping_add(b),
            IntKind::Sub => a.wrapping_sub(b),
            IntKind::And => a & b,
            IntKind::Or => a | b,
            IntKind::Xor => a ^ b,
            IntKind::Sll => a.wrapping_shl(b as u32 & 63),
            IntKind::Srl => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
            IntKind::Sra => a.wrapping_shr(b as u32 & 63),
            IntKind::Slt => i64::from(a < b),
            IntKind::Sltu => i64::from((a as u64) < (b as u64)),
            IntKind::Mul => a.wrapping_mul(b),
            IntKind::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            IntKind::Rem => {
                if b == 0 {
                    a
                } else {
                    a.wrapping_rem(b)
                }
            }
        }
    }
}

impl AsmModule {
    /// Functionally executes the module and compiles the recorded trace
    /// into a replayable [`Program`] (see the module docs for the machine
    /// semantics).
    ///
    /// `seed` becomes the program seed (behavioral ops draw from it, and
    /// it feeds through to [`Program::seed`]); `fuel` bounds the number of
    /// executed instructions.
    ///
    /// # Errors
    ///
    /// [`ExecError::OutOfFuel`] if the program does not exit within `fuel`
    /// instructions.
    pub fn execute(&self, seed: u64, fuel: u64) -> Result<Execution, ExecError> {
        let (br_slots, mem_slots) = self.arch_slots();
        let mut br_traces: Vec<Vec<bool>> = vec![Vec::new(); br_slots.len()];
        let mut mem_traces: Vec<Vec<u64>> = vec![Vec::new(); mem_slots.len()];

        let total_insts: u64 = self.static_inst_count();
        let mut exec_counts: Vec<u64> = vec![0; total_insts as usize];
        let mut machine = Machine::new();
        let mut call_stack: Vec<usize> = Vec::new();
        let mut stats = TraceStats::default();

        let mut block = self.entry;
        'run: loop {
            let blk = &self.blocks[block];
            let base_flat = self.start_flat[block];
            let mut next_block: Option<usize> = blk.fall;
            for (idx, ai) in blk.insts.iter().enumerate() {
                if stats.executed == fuel {
                    return Err(ExecError::OutOfFuel {
                        executed: stats.executed,
                    });
                }
                let flat = base_flat + idx as u64;
                let n = exec_counts[flat as usize];
                exec_counts[flat as usize] += 1;

                let op_class = op_class_of(&ai.op);
                stats.executed += 1;
                stats.class_counts[slot(op_class)] += 1;

                match &ai.op {
                    AsmOp::Beh(inst) => {
                        // Behavioral value results are not modelled; zero any
                        // named destination so downstream arch ops stay
                        // deterministic.
                        if let Some(dst) = inst.dst {
                            if dst.is_fp() {
                                machine.fregs[dst.index() as usize] = 0.0;
                            } else {
                                machine.seti(dst.index(), 0);
                            }
                        }
                    }
                    AsmOp::BehBranch { beh, .. } => {
                        let taken = self.br_behaviors[beh.0 as usize].outcome(seed, flat, n);
                        self.note_cond(&mut stats, block, taken);
                        if taken {
                            next_block = blk.taken;
                            break;
                        }
                    }
                    AsmOp::Jump => {
                        next_block = blk.taken;
                        break;
                    }
                    AsmOp::Call => {
                        if let Some(ret_to) = blk.fall {
                            call_stack.push(ret_to);
                            stats.max_call_depth =
                                stats.max_call_depth.max(call_stack.len() as u64);
                        }
                        next_block = blk.taken;
                        break;
                    }
                    AsmOp::Ret => match call_stack.pop() {
                        Some(ret_to) => {
                            next_block = Some(ret_to);
                            break;
                        }
                        None => break 'run,
                    },
                    AsmOp::Li { dst, imm } => machine.seti(*dst, *imm),
                    AsmOp::Fli { dst, imm } => machine.fregs[*dst as usize] = *imm,
                    AsmOp::Int3 { kind, dst, s1, s2 } => {
                        let b = machine.geti(*s2);
                        let v = machine.int3(*kind, *s1, b);
                        machine.seti(*dst, v);
                    }
                    AsmOp::IntImm { kind, dst, s1, imm } => {
                        let v = machine.int3(*kind, *s1, *imm);
                        machine.seti(*dst, v);
                    }
                    AsmOp::Fp3 { kind, dst, s1, s2 } => {
                        let a = machine.fregs[*s1 as usize];
                        let b = machine.fregs[*s2 as usize];
                        machine.fregs[*dst as usize] = match kind {
                            FpKind::Add => a + b,
                            FpKind::Sub => a - b,
                            FpKind::Mul => a * b,
                            FpKind::Div => a / b,
                        };
                    }
                    AsmOp::FpCmp { kind, dst, s1, s2 } => {
                        let a = machine.fregs[*s1 as usize];
                        let b = machine.fregs[*s2 as usize];
                        let v = match kind {
                            CmpKind::Eq => a == b,
                            CmpKind::Lt => a < b,
                            CmpKind::Le => a <= b,
                        };
                        machine.seti(*dst, i64::from(v));
                    }
                    AsmOp::MemArch {
                        store,
                        fp,
                        reg,
                        off,
                        base,
                    } => {
                        let addr = machine.geti(*base).wrapping_add(*off) as u64;
                        mem_traces[mem_slots[&flat]].push(addr);
                        if *store {
                            let bits = if *fp {
                                machine.fregs[*reg as usize].to_bits()
                            } else {
                                machine.geti(*reg) as u64
                            };
                            machine.mem.insert(addr, bits);
                        } else {
                            let bits = machine.mem.get(&addr).copied().unwrap_or(0);
                            if *fp {
                                machine.fregs[*reg as usize] = f64::from_bits(bits);
                            } else {
                                machine.seti(*reg, bits as i64);
                            }
                        }
                    }
                    AsmOp::BrZ { expect_zero, src } => {
                        let taken = (machine.geti(*src) == 0) == *expect_zero;
                        br_traces[br_slots[&flat]].push(taken);
                        self.note_cond(&mut stats, block, taken);
                        if taken {
                            next_block = blk.taken;
                            break;
                        }
                    }
                    AsmOp::BrCmp { kind, s1, s2 } => {
                        let a = machine.geti(*s1);
                        let b = machine.geti(*s2);
                        let taken = match kind {
                            BrKind::Eq => a == b,
                            BrKind::Ne => a != b,
                            BrKind::Lt => a < b,
                            BrKind::Ge => a >= b,
                            BrKind::Ltu => (a as u64) < (b as u64),
                            BrKind::Geu => (a as u64) >= (b as u64),
                        };
                        br_traces[br_slots[&flat]].push(taken);
                        self.note_cond(&mut stats, block, taken);
                        if taken {
                            next_block = blk.taken;
                            break;
                        }
                    }
                }
            }
            match next_block {
                Some(b) => block = b,
                None => break,
            }
        }

        let program = self
            .link(seed, &br_traces, &mem_traces)
            .map_err(ExecError::Link)?;
        Ok(Execution { program, stats })
    }

    /// Records one conditional-branch execution in the stats, classifying
    /// back-edges by taken-target position.
    fn note_cond(&self, stats: &mut TraceStats, block: usize, taken: bool) {
        stats.cond_execs += 1;
        if taken {
            stats.cond_taken += 1;
        }
        if let Some(target) = self.blocks[block].taken {
            if target <= block {
                stats.backedge_execs += 1;
                if taken {
                    stats.backedge_taken += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::parse;
    use crate::stream::DynStream;

    #[test]
    fn counted_loop_runs_exact_trips() {
        let src = "\
main:
    li   r1, 5
    li   r2, 0
loop:
    addi r2, r2, 3
    addi r1, r1, -1
    bnez r1, loop
done:
    ret
";
        let e = parse(src).unwrap().execute(0, 1_000).unwrap();
        // 2 setup + 5*3 loop + 1 ret
        assert_eq!(e.stats.executed, 18);
        assert_eq!(e.stats.cond_execs, 5);
        assert_eq!(e.stats.cond_taken, 4);
        assert_eq!(e.stats.backedge_execs, 5);
        assert!((e.stats.mean_trip() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn replay_program_matches_executed_trace() {
        let src = "\
main:
    li   r1, 6
    li   r3, 0
loop:
    andi r2, r1, 1
    st   r1, 0(r3)
    addi r3, r3, 8
    ld   r4, -8(r3)
    addi r1, r1, -1
    beqz r2, skip
    addi r5, r5, 1
skip:
    bnez r1, loop
tail:
    ret
";
        let e = parse(src).unwrap().execute(7, 10_000).unwrap();
        let walked: Vec<_> = DynStream::new(&e.program).collect();
        // The stream walk replays exactly the executed instruction count.
        assert_eq!(walked.len() as u64, e.stats.executed);
        // Data-dependent branch: r2 = r1 & 1 before the decrement, so r1 runs
        // 6,5,4,3,2,1 and beqz is taken exactly when r1 was even. Blocks are
        // main(2), loop(6: andi st addi ld addi beqz), anon(1: addi), skip(1),
        // tail(1) -> beqz sits at flat index 7.
        let beqz_pc = 7 * crate::program::INST_BYTES;
        let beqz: Vec<bool> = walked
            .iter()
            .filter(|i| i.pc == beqz_pc)
            .map(|i| i.taken)
            .collect();
        assert_eq!(beqz, [true, false, true, false, true, false]);
        // Store addresses stride by 8 from 0.
        let st_addrs: Vec<u64> = walked
            .iter()
            .filter(|i| i.op == OpClass::Store)
            .map(|i| i.mem_addr.unwrap())
            .collect();
        assert_eq!(st_addrs, [0, 8, 16, 24, 32, 40]);
    }

    #[test]
    fn loads_observe_stores_and_calls_nest() {
        let src = "\
main:
    li   r1, 41
    st   r1, 16(r0)
    call fun
    ld   r2, 16(r0)
    bnez r2, ok
bad:
    nop
    .exit
ok:
    ret
fun:
    ld   r3, 16(r0)
    addi r3, r3, 1
    st   r3, 16(r0)
    ret
";
        let e = parse(src).unwrap().execute(0, 1_000).unwrap();
        assert_eq!(e.stats.max_call_depth, 1);
        // The final bnez must be taken (memory carried 42 across the call).
        let walked: Vec<_> = DynStream::new(&e.program).collect();
        let last_branch = walked
            .iter()
            .rfind(|i| i.op == OpClass::BranchCond)
            .unwrap();
        assert!(last_branch.taken);
        assert_eq!(walked.len() as u64, e.stats.executed);
    }

    #[test]
    fn fuel_bounds_runaway_programs() {
        let src = "spin:\n    j spin\n";
        let err = parse(src).unwrap().execute(0, 100).unwrap_err();
        assert_eq!(err, ExecError::OutOfFuel { executed: 100 });
    }

    #[test]
    fn fp_path_computes() {
        let src = "\
main:
    fli  f1, 1.5
    fli  f2, 2.5
    fadd f3, f1, f2
    fli  f4, 4.0
    flt  r1, f3, f4
    bnez r1, yes
no:
    nop
    .exit
yes:
    ret
";
        let e = parse(src).unwrap().execute(0, 100).unwrap();
        let walked: Vec<_> = DynStream::new(&e.program).collect();
        // 1.5 + 2.5 = 4.0, flt(4.0, 4.0) = 0 -> branch not taken -> falls to `no`.
        let br = walked.iter().find(|i| i.op == OpClass::BranchCond).unwrap();
        assert!(!br.taken);
        // 3x fli + fadd + flt all occupy the FP-add class.
        assert_eq!(e.stats.fp_frac(), 5.0 / e.stats.executed as f64);
    }

    #[test]
    fn mixed_behavioral_and_architectural_ops_replay_identically() {
        let src = "\
.brbeh coin prob 0.5
.membeh heap random 4096 1024
main:
    li   r1, 20
loop:
    load r2, [r1] @heap
    br.cond r2, hit @coin
miss:
    addi r1, r1, -1
    bnez r1, loop
done:
    ret
hit:
    addi r1, r1, -1
    bnez r1, loop
    .fall done
";
        let m = parse(src).unwrap();
        let e = m.execute(123, 10_000).unwrap();
        let a: Vec<_> = DynStream::new(&e.program).collect();
        let b: Vec<_> = DynStream::new(&e.program).collect();
        assert_eq!(a, b);
        assert_eq!(a.len() as u64, e.stats.executed);
        // Same seed re-executes to the same program (traces included).
        let e2 = m.execute(123, 10_000).unwrap();
        assert_eq!(e.program, e2.program);
        assert_eq!(e.stats, e2.stats);
    }
}
