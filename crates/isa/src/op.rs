//! Operation classes and architectural registers of the timing-semantic ISA.

use std::fmt;

/// Which execution cluster (and hence GALS clock domain) an operation issues
/// to, mirroring the paper's three issue queues: integer (domain 3),
/// floating-point (domain 4) and memory (domain 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Cluster {
    /// Integer issue queue + integer ALUs (branches resolve here too).
    Int,
    /// Floating-point issue queue + FP ALUs.
    Fp,
    /// Memory issue queue + D-cache/L2.
    Mem,
}

impl Cluster {
    /// All clusters, in domain order 3, 4, 5.
    pub const ALL: [Cluster; 3] = [Cluster::Int, Cluster::Fp, Cluster::Mem];
}

impl fmt::Display for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cluster::Int => write!(f, "int"),
            Cluster::Fp => write!(f, "fp"),
            Cluster::Mem => write!(f, "mem"),
        }
    }
}

/// The operation class of an instruction.
///
/// The ISA is *timing-semantic*: operations carry everything the pipeline
/// model needs (dependences, execution cluster, latency class, memory or
/// control behaviour) and nothing more — actual data values are never
/// computed, exactly as in trace-driven microarchitecture simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-cycle integer ALU operation (add, logic, shift, compare).
    IntAlu,
    /// Pipelined integer multiply.
    IntMul,
    /// Unpipelined integer divide.
    IntDiv,
    /// FP add/subtract/convert.
    FpAdd,
    /// FP multiply.
    FpMul,
    /// FP divide / sqrt (unpipelined).
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch (resolves in the integer cluster).
    BranchCond,
    /// Unconditional direct jump.
    Jump,
    /// Call (pushes the return-address stack).
    Call,
    /// Return (pops the return-address stack).
    Ret,
    /// No-op (consumes a slot only).
    Nop,
}

impl OpClass {
    /// True for any control-transfer instruction.
    #[inline]
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            OpClass::BranchCond | OpClass::Jump | OpClass::Call | OpClass::Ret
        )
    }

    /// True for conditional branches only.
    #[inline]
    pub fn is_cond_branch(self) -> bool {
        self == OpClass::BranchCond
    }

    /// True for loads and stores.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// True for operations executed by the FP cluster.
    #[inline]
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv)
    }

    /// The cluster (issue queue) this operation dispatches to.
    ///
    /// Branches and plain integer ops go to the integer queue; loads and
    /// stores to the memory queue; FP ops to the FP queue — matching the
    /// paper's three-queue, five-domain partitioning.
    #[inline]
    pub fn cluster(self) -> Cluster {
        match self {
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv => Cluster::Fp,
            OpClass::Load | OpClass::Store => Cluster::Mem,
            _ => Cluster::Int,
        }
    }

    /// Execution latency in cycles of the owning cluster's clock, excluding
    /// any cache misses (loads add memory-hierarchy latency on top).
    ///
    /// Latencies follow SimpleScalar's defaults for an Alpha-like core.
    #[inline]
    pub fn exec_latency(self) -> u32 {
        match self {
            OpClass::IntAlu | OpClass::Nop => 1,
            OpClass::IntMul => 3,
            OpClass::IntDiv => 20,
            OpClass::FpAdd => 2,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 12,
            OpClass::Load => 1, // address generation; cache latency added separately
            OpClass::Store => 1, // address generation
            OpClass::BranchCond | OpClass::Jump | OpClass::Call | OpClass::Ret => 1,
        }
    }

    /// Whether the functional unit pipelines back-to-back operations
    /// (divides do not).
    #[inline]
    pub fn is_pipelined(self) -> bool {
        !matches!(self, OpClass::IntDiv | OpClass::FpDiv)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int.alu",
            OpClass::IntMul => "int.mul",
            OpClass::IntDiv => "int.div",
            OpClass::FpAdd => "fp.add",
            OpClass::FpMul => "fp.mul",
            OpClass::FpDiv => "fp.div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::BranchCond => "br.cond",
            OpClass::Jump => "jump",
            OpClass::Call => "call",
            OpClass::Ret => "ret",
            OpClass::Nop => "nop",
        };
        f.write_str(s)
    }
}

/// Number of architectural integer registers (Alpha-like).
pub const NUM_INT_ARCH_REGS: u8 = 32;
/// Number of architectural floating-point registers.
pub const NUM_FP_ARCH_REGS: u8 = 32;

/// An architectural register: integer `r0..r31` or floating point `f0..f31`.
///
/// Encoded compactly in a single byte; values `0..32` are integer registers,
/// `32..64` are FP registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArchReg(u8);

impl ArchReg {
    /// Creates an integer register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_INT_ARCH_REGS`.
    #[inline]
    pub fn int(index: u8) -> Self {
        assert!(
            index < NUM_INT_ARCH_REGS,
            "integer register index {index} out of range"
        );
        ArchReg(index)
    }

    /// Creates a floating-point register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_FP_ARCH_REGS`.
    #[inline]
    pub fn fp(index: u8) -> Self {
        assert!(
            index < NUM_FP_ARCH_REGS,
            "fp register index {index} out of range"
        );
        ArchReg(NUM_INT_ARCH_REGS + index)
    }

    /// True if this is an FP register.
    #[inline]
    pub fn is_fp(self) -> bool {
        self.0 >= NUM_INT_ARCH_REGS
    }

    /// Index within the register file class (0-based).
    #[inline]
    pub fn index(self) -> u8 {
        if self.is_fp() {
            self.0 - NUM_INT_ARCH_REGS
        } else {
            self.0
        }
    }

    /// Dense encoding over both classes, `0..64`, usable as a table index.
    #[inline]
    pub fn dense(self) -> usize {
        self.0 as usize
    }

    /// Total size of the dense architectural namespace.
    pub const DENSE_SIZE: usize = (NUM_INT_ARCH_REGS + NUM_FP_ARCH_REGS) as usize;
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fp() {
            write!(f, "f{}", self.index())
        } else {
            write!(f, "r{}", self.index())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clusters_route_like_the_paper() {
        assert_eq!(OpClass::IntAlu.cluster(), Cluster::Int);
        assert_eq!(OpClass::BranchCond.cluster(), Cluster::Int);
        assert_eq!(OpClass::FpMul.cluster(), Cluster::Fp);
        assert_eq!(OpClass::Load.cluster(), Cluster::Mem);
        assert_eq!(OpClass::Store.cluster(), Cluster::Mem);
    }

    #[test]
    fn branch_predicates() {
        assert!(OpClass::BranchCond.is_branch());
        assert!(OpClass::Ret.is_branch());
        assert!(!OpClass::Load.is_branch());
        assert!(OpClass::BranchCond.is_cond_branch());
        assert!(!OpClass::Jump.is_cond_branch());
    }

    #[test]
    fn latencies_are_positive_and_divides_unpipelined() {
        for op in [
            OpClass::IntAlu,
            OpClass::IntMul,
            OpClass::IntDiv,
            OpClass::FpAdd,
            OpClass::FpMul,
            OpClass::FpDiv,
            OpClass::Load,
            OpClass::Store,
            OpClass::BranchCond,
            OpClass::Nop,
        ] {
            assert!(op.exec_latency() >= 1);
        }
        assert!(!OpClass::IntDiv.is_pipelined());
        assert!(!OpClass::FpDiv.is_pipelined());
        assert!(OpClass::IntMul.is_pipelined());
    }

    #[test]
    fn arch_reg_encoding_round_trips() {
        let r5 = ArchReg::int(5);
        let f7 = ArchReg::fp(7);
        assert!(!r5.is_fp());
        assert!(f7.is_fp());
        assert_eq!(r5.index(), 5);
        assert_eq!(f7.index(), 7);
        assert_eq!(r5.dense(), 5);
        assert_eq!(f7.dense(), 32 + 7);
        assert_eq!(format!("{r5} {f7}"), "r5 f7");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_reg_bounds_checked() {
        let _ = ArchReg::int(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fp_reg_bounds_checked() {
        let _ = ArchReg::fp(32);
    }
}
