//! The `.gasm` assembly front end: a small text format over the
//! timing-semantic ISA.
//!
//! A `.gasm` module mixes two instruction vocabularies:
//!
//! * **Behavioral ops** use the [`OpClass`] display names (`int.alu`,
//!   `load`, `br.cond`, …) and reference *declared behaviours* by name
//!   (`@heap`, `@backedge`), exactly mirroring what the synthetic workload
//!   generator emits. Any valid [`Program`] pretty-prints to this subset
//!   ([`print_gasm`]) and re-parses to an equal program
//!   ([`AsmModule::to_program`]).
//! * **Architectural ops** (`li`, `add`, `beqz`, `ld`, …) compute with real
//!   register values: conditional branch outcomes and memory addresses come
//!   from executed data, not behaviour draws. They require the functional
//!   executor (`AsmModule::execute` in [`crate::exec`]), which records the
//!   executed outcome/address streams as [`BranchBehavior::Trace`] /
//!   [`MemBehavior::Trace`] entries of the compiled [`Program`] — so the
//!   pipeline consumes program-driven workloads through the same stream
//!   interface as synthetic ones.
//!
//! ## Format
//!
//! ```text
//! ; comments run to end of line (also '#')
//! .entry main              ; optional, defaults to the first block
//! .brbeh flip prob 0.5     ; prob P | loop N | pattern TNT.. | trace TNT..
//! .membeh heap stride 0 8 65536
//!                          ; stride B S F | random B F | hotcold B H C P
//!                          ; | trace A0 A1 ..
//!
//! main:
//!     li   r1, 100
//! loop:                    ; labels start basic blocks
//!     addi r1, r1, -1
//!     load r2, [r1] @heap  ; behavioral load
//!     bnez r1, loop        ; architectural branch: outcome from r1
//!     .fall done           ; explicit non-adjacent fall-through
//! tail:
//!     ret
//! done:
//!     j    tail
//! ```
//!
//! Blocks split at labels and after every control transfer (`br.cond`,
//! `j`/`jump`, `call`, `ret`, and the architectural branches); instructions
//! following a terminator without a label continue in a fresh anonymous
//! block. Branch targets are `label` or `label+K` (K instructions past the
//! label) and must land on a block leader — `label+K` into the middle of a
//! block is a typed [`AsmErrorKind::BranchIntoMidBlock`] error. The
//! fall-through of a block defaults to the next block in the file;
//! `.fall LABEL` overrides it and `.exit` ends the program there. The CFG
//! verifier additionally rejects unreachable blocks and control falling off
//! the end of the file as typed [`ProgramError`] diagnostics with
//! line/column positions.

use std::collections::BTreeMap;
use std::fmt;

use crate::behavior::{BranchBehavior, BranchBehaviorId, MemBehavior, MemBehaviorId};
use crate::op::{ArchReg, OpClass};
use crate::program::{Inst, Program, ProgramBuilder, ProgramError};

/// What went wrong while parsing or verifying a `.gasm` module.
#[derive(Debug, Clone, PartialEq)]
pub enum AsmErrorKind {
    /// The mnemonic is not part of either vocabulary.
    UnknownMnemonic(String),
    /// An operand list does not fit the mnemonic (wrong count or shape).
    MalformedOperand(String),
    /// A register operand is not `r0`–`r31` / `f0`–`f31` (or `-`).
    BadRegister(String),
    /// An immediate or behaviour argument failed to parse.
    BadImmediate(String),
    /// A directive is unknown, misplaced, or duplicated.
    BadDirective(String),
    /// The same label is defined twice.
    DuplicateLabel(String),
    /// The same behaviour name is declared twice.
    DuplicateBehavior(String),
    /// `@name` does not match any declared behaviour of the required kind.
    UnknownBehavior(String),
    /// A branch target, `.fall`, or `.entry` names an undefined label.
    UndefinedLabel(String),
    /// A `label+K` target resolves into the middle of a basic block
    /// (targets must be block leaders).
    BranchIntoMidBlock(String),
    /// An instruction appears before the first label.
    InstructionBeforeLabel,
    /// [`AsmModule::to_program`] was called on a module containing
    /// architectural ops; those need [`AsmModule::execute`].
    RequiresExecution(String),
    /// A CFG-level diagnostic (empty block, unreachable block, control
    /// falling off the end, …) from the verifier.
    Program(ProgramError),
}

impl fmt::Display for AsmErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic {m:?}"),
            AsmErrorKind::MalformedOperand(m) => write!(f, "malformed operand: {m}"),
            AsmErrorKind::BadRegister(r) => write!(f, "bad register {r:?}"),
            AsmErrorKind::BadImmediate(i) => write!(f, "bad immediate {i:?}"),
            AsmErrorKind::BadDirective(d) => write!(f, "bad directive: {d}"),
            AsmErrorKind::DuplicateLabel(l) => write!(f, "duplicate label {l:?}"),
            AsmErrorKind::DuplicateBehavior(b) => write!(f, "duplicate behaviour {b:?}"),
            AsmErrorKind::UnknownBehavior(b) => write!(f, "unknown behaviour {b:?}"),
            AsmErrorKind::UndefinedLabel(l) => write!(f, "undefined label {l:?}"),
            AsmErrorKind::BranchIntoMidBlock(t) => {
                write!(
                    f,
                    "target {t:?} lands inside a basic block, not at a leader"
                )
            }
            AsmErrorKind::InstructionBeforeLabel => {
                write!(f, "instruction before the first label")
            }
            AsmErrorKind::RequiresExecution(m) => {
                write!(
                    f,
                    "architectural op {m:?} requires the executor (AsmModule::execute); \
                     to_program links behavioral-only modules"
                )
            }
            AsmErrorKind::Program(e) => write!(f, "{e}"),
        }
    }
}

/// A `.gasm` parse/verify error with its 1-based source position.
#[derive(Debug, Clone, PartialEq)]
pub struct AsmError {
    /// What went wrong.
    pub kind: AsmErrorKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}:{}: {}", self.line, self.col, self.kind)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(kind: AsmErrorKind, line: u32, col: u32) -> Result<T, AsmError> {
    Err(AsmError { kind, line, col })
}

/// Three-register integer ops (architectural).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IntKind {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
    Mul,
    Div,
    Rem,
}

impl IntKind {
    pub(crate) fn class(self) -> OpClass {
        match self {
            IntKind::Mul => OpClass::IntMul,
            IntKind::Div | IntKind::Rem => OpClass::IntDiv,
            _ => OpClass::IntAlu,
        }
    }
}

/// Three-register FP ops (architectural).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FpKind {
    Add,
    Sub,
    Mul,
    Div,
}

impl FpKind {
    pub(crate) fn class(self) -> OpClass {
        match self {
            FpKind::Add | FpKind::Sub => OpClass::FpAdd,
            FpKind::Mul => OpClass::FpMul,
            FpKind::Div => OpClass::FpDiv,
        }
    }
}

/// FP compares producing an integer 0/1 (architectural).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CmpKind {
    Eq,
    Lt,
    Le,
}

/// Two-register architectural branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BrKind {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

/// One parsed instruction. Control transfers do not carry their target —
/// the owning block's `taken` edge does.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum AsmOp {
    /// A fully-formed behavioral non-control instruction (alu/load/store/nop).
    Beh(Inst),
    /// Behavioral conditional branch (outcome from a declared behaviour).
    BehBranch {
        /// Condition dependence register.
        cond: Option<ArchReg>,
        /// The declared behaviour resolving outcomes.
        beh: BranchBehaviorId,
    },
    /// Unconditional jump (terminator; target on the block).
    Jump,
    /// Call (terminator; target on the block, returns to the fall-through).
    Call,
    /// Return (terminator).
    Ret,
    /// Load immediate into an integer register.
    Li {
        /// Destination integer register.
        dst: u8,
        /// The immediate value.
        imm: i64,
    },
    /// Load an FP immediate.
    Fli {
        /// Destination FP register.
        dst: u8,
        /// The immediate value.
        imm: f64,
    },
    /// Three-register integer op.
    Int3 {
        /// Operation.
        kind: IntKind,
        /// Destination register.
        dst: u8,
        /// First source.
        s1: u8,
        /// Second source.
        s2: u8,
    },
    /// Register-immediate integer op.
    IntImm {
        /// Operation.
        kind: IntKind,
        /// Destination register.
        dst: u8,
        /// Source register.
        s1: u8,
        /// The immediate.
        imm: i64,
    },
    /// Three-register FP op.
    Fp3 {
        /// Operation.
        kind: FpKind,
        /// Destination FP register.
        dst: u8,
        /// First FP source.
        s1: u8,
        /// Second FP source.
        s2: u8,
    },
    /// FP compare into an integer register.
    FpCmp {
        /// Compare relation.
        kind: CmpKind,
        /// Destination integer register.
        dst: u8,
        /// First FP source.
        s1: u8,
        /// Second FP source.
        s2: u8,
    },
    /// Architectural load/store at `off(base)`.
    MemArch {
        /// Store (`true`) or load (`false`).
        store: bool,
        /// FP data register (`fld`/`fst`).
        fp: bool,
        /// Data register (destination for loads, source for stores).
        reg: u8,
        /// Byte offset.
        off: i64,
        /// Integer base register.
        base: u8,
    },
    /// `beqz`/`bnez` (terminator; target on the block).
    BrZ {
        /// Taken when the register is zero (`beqz`) vs non-zero (`bnez`).
        expect_zero: bool,
        /// Tested integer register.
        src: u8,
    },
    /// Two-register compare-and-branch (terminator; target on the block).
    BrCmp {
        /// Compare relation.
        kind: BrKind,
        /// First integer source.
        s1: u8,
        /// Second integer source.
        s2: u8,
    },
}

impl AsmOp {
    /// True for ops whose semantics need the functional executor.
    pub(crate) fn is_architectural(&self) -> bool {
        !matches!(
            self,
            AsmOp::Beh(_) | AsmOp::BehBranch { .. } | AsmOp::Jump | AsmOp::Call | AsmOp::Ret
        )
    }

    /// True for ops that terminate a basic block.
    fn is_terminator(&self) -> bool {
        matches!(
            self,
            AsmOp::BehBranch { .. }
                | AsmOp::Jump
                | AsmOp::Call
                | AsmOp::Ret
                | AsmOp::BrZ { .. }
                | AsmOp::BrCmp { .. }
        )
    }

    fn mnemonic(&self) -> &'static str {
        match self {
            AsmOp::Beh(i) => match i.op {
                OpClass::IntAlu => "int.alu",
                OpClass::IntMul => "int.mul",
                OpClass::IntDiv => "int.div",
                OpClass::FpAdd => "fp.add",
                OpClass::FpMul => "fp.mul",
                OpClass::FpDiv => "fp.div",
                OpClass::Load => "load",
                OpClass::Store => "store",
                _ => "nop",
            },
            AsmOp::BehBranch { .. } => "br.cond",
            AsmOp::Jump => "j",
            AsmOp::Call => "call",
            AsmOp::Ret => "ret",
            AsmOp::Li { .. } => "li",
            AsmOp::Fli { .. } => "fli",
            AsmOp::Int3 { kind, .. } => match kind {
                IntKind::Add => "add",
                IntKind::Sub => "sub",
                IntKind::And => "and",
                IntKind::Or => "or",
                IntKind::Xor => "xor",
                IntKind::Sll => "sll",
                IntKind::Srl => "srl",
                IntKind::Sra => "sra",
                IntKind::Slt => "slt",
                IntKind::Sltu => "sltu",
                IntKind::Mul => "mul",
                IntKind::Div => "div",
                IntKind::Rem => "rem",
            },
            AsmOp::IntImm { kind, .. } => match kind {
                IntKind::Add => "addi",
                IntKind::And => "andi",
                IntKind::Or => "ori",
                IntKind::Xor => "xori",
                IntKind::Sll => "slli",
                IntKind::Srl => "srli",
                IntKind::Sra => "srai",
                IntKind::Slt => "slti",
                _ => "addi",
            },
            AsmOp::Fp3 { kind, .. } => match kind {
                FpKind::Add => "fadd",
                FpKind::Sub => "fsub",
                FpKind::Mul => "fmul",
                FpKind::Div => "fdiv",
            },
            AsmOp::FpCmp { kind, .. } => match kind {
                CmpKind::Eq => "feq",
                CmpKind::Lt => "flt",
                CmpKind::Le => "fle",
            },
            AsmOp::MemArch { store, fp, .. } => match (store, fp) {
                (false, false) => "ld",
                (false, true) => "fld",
                (true, false) => "st",
                (true, true) => "fst",
            },
            AsmOp::BrZ { expect_zero, .. } => {
                if *expect_zero {
                    "beqz"
                } else {
                    "bnez"
                }
            }
            AsmOp::BrCmp { kind, .. } => match kind {
                BrKind::Eq => "beq",
                BrKind::Ne => "bne",
                BrKind::Lt => "blt",
                BrKind::Ge => "bge",
                BrKind::Ltu => "bltu",
                BrKind::Geu => "bgeu",
            },
        }
    }
}

/// A parsed instruction with its source position.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct AsmInst {
    pub(crate) op: AsmOp,
    pub(crate) line: u32,
    pub(crate) col: u32,
}

/// A verified basic block of a parsed module (targets resolved to indices).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ModBlock {
    pub(crate) insts: Vec<AsmInst>,
    /// Taken-edge successor of the terminating control transfer.
    pub(crate) taken: Option<usize>,
    /// Fall-through successor; `None` exits the program.
    pub(crate) fall: Option<usize>,
    pub(crate) line: u32,
    pub(crate) col: u32,
}

/// A parsed and CFG-verified `.gasm` module.
///
/// Behavioral-only modules link straight to a [`Program`] with
/// [`AsmModule::to_program`]; modules with architectural ops run through
/// the functional executor (`AsmModule::execute`, see [`crate::exec`]),
/// which compiles them to a [`Program`] carrying recorded `Trace`
/// behaviours.
#[derive(Debug, Clone, PartialEq)]
pub struct AsmModule {
    pub(crate) blocks: Vec<ModBlock>,
    pub(crate) entry: usize,
    pub(crate) br_behaviors: Vec<BranchBehavior>,
    pub(crate) mem_behaviors: Vec<MemBehavior>,
    /// First flat instruction index of each block.
    pub(crate) start_flat: Vec<u64>,
}

impl AsmModule {
    /// Number of basic blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of static instructions.
    pub fn static_inst_count(&self) -> u64 {
        self.blocks.iter().map(|b| b.insts.len() as u64).sum()
    }

    /// True if any instruction needs the functional executor.
    pub fn has_architectural_ops(&self) -> bool {
        self.blocks
            .iter()
            .any(|b| b.insts.iter().any(|i| i.op.is_architectural()))
    }

    /// Links a behavioral-only module into a validated [`Program`].
    ///
    /// # Errors
    ///
    /// [`AsmErrorKind::RequiresExecution`] if the module contains
    /// architectural ops (run those through `execute`), or a wrapped
    /// [`ProgramError`] if final validation fails.
    pub fn to_program(&self, seed: u64) -> Result<Program, AsmError> {
        for block in &self.blocks {
            if let Some(inst) = block.insts.iter().find(|i| i.op.is_architectural()) {
                return err(
                    AsmErrorKind::RequiresExecution(inst.op.mnemonic().to_string()),
                    inst.line,
                    inst.col,
                );
            }
        }
        self.link(seed, &[], &[])
    }

    /// Flat-order slot assignment for architectural branches and memory
    /// ops: `(branch_slots, mem_slots)` mapping flat instruction index to
    /// the ordinal of its appended `Trace` behaviour.
    pub(crate) fn arch_slots(&self) -> (BTreeMap<u64, usize>, BTreeMap<u64, usize>) {
        let mut br = BTreeMap::new();
        let mut mem = BTreeMap::new();
        let mut flat = 0u64;
        for block in &self.blocks {
            for inst in &block.insts {
                match inst.op {
                    AsmOp::BrZ { .. } | AsmOp::BrCmp { .. } => {
                        let next = br.len();
                        br.insert(flat, next);
                    }
                    AsmOp::MemArch { .. } => {
                        let next = mem.len();
                        mem.insert(flat, next);
                    }
                    _ => {}
                }
                flat += 1;
            }
        }
        (br, mem)
    }

    /// Compiles the module to a [`Program`], appending one `Trace`
    /// behaviour per architectural branch/memory instruction from the
    /// supplied recordings (empty slices for behavioral-only modules).
    pub(crate) fn link(
        &self,
        seed: u64,
        br_traces: &[Vec<bool>],
        mem_traces: &[Vec<u64>],
    ) -> Result<Program, AsmError> {
        let (br_slots, mem_slots) = self.arch_slots();
        let mut b = ProgramBuilder::new(seed);
        for beh in &self.br_behaviors {
            b.add_branch_behavior(beh.clone());
        }
        for beh in &self.mem_behaviors {
            b.add_mem_behavior(beh.clone());
        }
        let arch_br_base = self.br_behaviors.len() as u32;
        let arch_mem_base = self.mem_behaviors.len() as u32;
        for (i, _) in br_slots.iter().enumerate() {
            let trace = br_traces.get(i).cloned().unwrap_or_default();
            b.add_branch_behavior(BranchBehavior::Trace(trace));
        }
        for (i, _) in mem_slots.iter().enumerate() {
            let trace = mem_traces.get(i).cloned().unwrap_or_default();
            b.add_mem_behavior(MemBehavior::Trace(trace));
        }

        let mut flat = 0u64;
        for block in &self.blocks {
            let mut insts = Vec::with_capacity(block.insts.len());
            for ai in &block.insts {
                insts.push(lower(
                    ai,
                    flat,
                    &br_slots,
                    &mem_slots,
                    arch_br_base,
                    arch_mem_base,
                ));
                flat += 1;
            }
            let taken = block.taken.map(|t| crate::program::BlockId(t as u32));
            let fall = block.fall.map(|t| crate::program::BlockId(t as u32));
            b.add_block(insts, taken, fall);
        }
        b.set_entry(crate::program::BlockId(self.entry as u32));
        match b.build() {
            Ok(p) => Ok(p),
            Err(e) => {
                // The parser's own verifier should have caught everything;
                // surface any residue with the offending block's position.
                let at = match &e {
                    ProgramError::BranchNotTerminator(b, _)
                    | ProgramError::MissingSuccessor(b)
                    | ProgramError::BadBehavior(b, _)
                    | ProgramError::MissingBehavior(b, _)
                    | ProgramError::EmptyBlock(b)
                    | ProgramError::Unreachable(b)
                    | ProgramError::FallsOffEnd(b)
                    | ProgramError::BadEntry(b) => self.blocks.get(b.0 as usize),
                    ProgramError::BadEdge { from, .. } => self.blocks.get(from.0 as usize),
                    ProgramError::Empty => None,
                };
                let (line, col) = at.map_or((1, 1), |blk| (blk.line, blk.col));
                err(AsmErrorKind::Program(e), line, col)
            }
        }
    }
}

/// Lowers one parsed instruction to a timing-ISA [`Inst`].
fn lower(
    ai: &AsmInst,
    flat: u64,
    br_slots: &BTreeMap<u64, usize>,
    mem_slots: &BTreeMap<u64, usize>,
    arch_br_base: u32,
    arch_mem_base: u32,
) -> Inst {
    match &ai.op {
        AsmOp::Beh(inst) => inst.clone(),
        AsmOp::BehBranch { cond, beh } => Inst::branch(*cond, *beh),
        AsmOp::Jump => Inst::jump(),
        AsmOp::Call => Inst::call(),
        AsmOp::Ret => Inst::ret(),
        AsmOp::Li { dst, .. } => Inst {
            op: OpClass::IntAlu,
            dst: Some(ArchReg::int(*dst)),
            src1: None,
            src2: None,
            mem: None,
            branch: None,
        },
        AsmOp::Fli { dst, .. } => Inst {
            op: OpClass::FpAdd,
            dst: Some(ArchReg::fp(*dst)),
            src1: None,
            src2: None,
            mem: None,
            branch: None,
        },
        AsmOp::Int3 { kind, dst, s1, s2 } => Inst::alu(
            kind.class(),
            ArchReg::int(*dst),
            Some(ArchReg::int(*s1)),
            Some(ArchReg::int(*s2)),
        ),
        AsmOp::IntImm { kind, dst, s1, .. } => Inst::alu(
            kind.class(),
            ArchReg::int(*dst),
            Some(ArchReg::int(*s1)),
            None,
        ),
        AsmOp::Fp3 { kind, dst, s1, s2 } => Inst::alu(
            kind.class(),
            ArchReg::fp(*dst),
            Some(ArchReg::fp(*s1)),
            Some(ArchReg::fp(*s2)),
        ),
        AsmOp::FpCmp { dst, s1, s2, .. } => Inst::alu(
            OpClass::FpAdd,
            ArchReg::int(*dst),
            Some(ArchReg::fp(*s1)),
            Some(ArchReg::fp(*s2)),
        ),
        AsmOp::MemArch {
            store,
            fp,
            reg,
            base,
            ..
        } => {
            let mem = MemBehaviorId(arch_mem_base + mem_slots[&flat] as u32);
            let data = if *fp {
                ArchReg::fp(*reg)
            } else {
                ArchReg::int(*reg)
            };
            if *store {
                Inst::store(Some(data), Some(ArchReg::int(*base)), mem)
            } else {
                Inst::load(data, Some(ArchReg::int(*base)), mem)
            }
        }
        AsmOp::BrZ { src, .. } => Inst::branch(
            Some(ArchReg::int(*src)),
            BranchBehaviorId(arch_br_base + br_slots[&flat] as u32),
        ),
        AsmOp::BrCmp { s1, s2, .. } => Inst {
            op: OpClass::BranchCond,
            dst: None,
            src1: Some(ArchReg::int(*s1)),
            src2: Some(ArchReg::int(*s2)),
            mem: None,
            branch: Some(BranchBehaviorId(arch_br_base + br_slots[&flat] as u32)),
        },
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Tok<'a> {
    text: &'a str,
    col: u32,
}

fn tokenize(line: &str) -> Vec<Tok<'_>> {
    let mut toks = Vec::new();
    let mut start: Option<usize> = None;
    for (i, c) in line.char_indices() {
        if c == ';' || c == '#' {
            if let Some(s) = start.take() {
                toks.push(Tok {
                    text: &line[s..i],
                    col: s as u32 + 1,
                });
            }
            return toks;
        }
        if c.is_whitespace() || c == ',' {
            if let Some(s) = start.take() {
                toks.push(Tok {
                    text: &line[s..i],
                    col: s as u32 + 1,
                });
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        toks.push(Tok {
            text: &line[s..],
            col: s as u32 + 1,
        });
    }
    toks
}

/// An unresolved control-transfer target: `label` or `label+K`.
#[derive(Debug, Clone)]
struct RawTarget {
    label: String,
    offset: u64,
    line: u32,
    col: u32,
}

#[derive(Debug, Clone)]
enum RawFall {
    Default,
    To(RawTarget),
    Exit,
}

struct RawBlock {
    insts: Vec<AsmInst>,
    taken: Option<RawTarget>,
    fall: RawFall,
    closed: bool,
    line: u32,
    col: u32,
}

impl RawBlock {
    fn new(line: u32, col: u32) -> Self {
        RawBlock {
            insts: Vec::new(),
            taken: None,
            fall: RawFall::Default,
            closed: false,
            line,
            col,
        }
    }
}

#[derive(Default)]
struct Parser {
    br_behaviors: Vec<BranchBehavior>,
    mem_behaviors: Vec<MemBehavior>,
    br_names: BTreeMap<String, u32>,
    mem_names: BTreeMap<String, u32>,
    blocks: Vec<RawBlock>,
    labels: BTreeMap<String, usize>,
    entry: Option<RawTarget>,
}

/// Parses `.gasm` text into a CFG-verified [`AsmModule`].
///
/// # Errors
///
/// Every syntactic and structural problem is a typed [`AsmError`] with a
/// 1-based line/column: unknown mnemonics, malformed operands, undefined
/// labels, `label+K` targets landing mid-block, duplicate labels or
/// behaviour names, and the CFG diagnostics (empty or unreachable blocks,
/// control falling off the end) wrapped as
/// [`AsmErrorKind::Program`].
pub fn parse(text: &str) -> Result<AsmModule, AsmError> {
    let mut p = Parser::default();
    for (i, raw_line) in text.lines().enumerate() {
        p.line(raw_line, i as u32 + 1)?;
    }
    p.finish()
}

impl Parser {
    fn line(&mut self, raw: &str, line: u32) -> Result<(), AsmError> {
        let toks = tokenize(raw);
        if toks.is_empty() {
            return Ok(());
        }
        let mut rest = &toks[..];
        let first = &toks[0];
        if let Some(label) = first.text.strip_suffix(':') {
            if label.is_empty() {
                return err(
                    AsmErrorKind::MalformedOperand("empty label".into()),
                    line,
                    first.col,
                );
            }
            if self.labels.contains_key(label) {
                return err(AsmErrorKind::DuplicateLabel(label.into()), line, first.col);
            }
            self.labels.insert(label.to_string(), self.blocks.len());
            self.blocks.push(RawBlock::new(line, first.col));
            rest = &toks[1..];
            if rest.is_empty() {
                return Ok(());
            }
        }
        if rest[0].text.starts_with('.') {
            return self.directive(rest, line);
        }
        // An instruction: needs an open block; a terminator in the current
        // block splits off a fresh anonymous one.
        match self.blocks.last() {
            None => return err(AsmErrorKind::InstructionBeforeLabel, line, rest[0].col),
            Some(b) if b.closed => self.blocks.push(RawBlock::new(line, rest[0].col)),
            Some(_) => {}
        }
        self.instruction(rest, line)
    }

    fn directive(&mut self, toks: &[Tok<'_>], line: u32) -> Result<(), AsmError> {
        let name = toks[0].text;
        let col = toks[0].col;
        match name {
            ".entry" => {
                if toks.len() != 2 {
                    return err(
                        AsmErrorKind::BadDirective(".entry expects one label".into()),
                        line,
                        col,
                    );
                }
                if self.entry.is_some() {
                    return err(
                        AsmErrorKind::BadDirective("duplicate .entry".into()),
                        line,
                        col,
                    );
                }
                self.entry = Some(parse_target(&toks[1], line)?);
                Ok(())
            }
            ".fall" | ".exit" => {
                let Some(block) = self.blocks.last_mut() else {
                    return err(
                        AsmErrorKind::BadDirective(format!("{name} outside a block")),
                        line,
                        col,
                    );
                };
                if !matches!(block.fall, RawFall::Default) {
                    return err(
                        AsmErrorKind::BadDirective(format!("{name}: fall-through already set")),
                        line,
                        col,
                    );
                }
                if name == ".exit" {
                    if toks.len() != 1 {
                        return err(
                            AsmErrorKind::BadDirective(".exit takes no operands".into()),
                            line,
                            col,
                        );
                    }
                    block.fall = RawFall::Exit;
                } else {
                    if toks.len() != 2 {
                        return err(
                            AsmErrorKind::BadDirective(".fall expects one label".into()),
                            line,
                            col,
                        );
                    }
                    block.fall = RawFall::To(parse_target(&toks[1], line)?);
                }
                Ok(())
            }
            ".brbeh" => self.brbeh(toks, line),
            ".membeh" => self.membeh(toks, line),
            _ => err(
                AsmErrorKind::BadDirective(format!("unknown directive {name:?}")),
                line,
                col,
            ),
        }
    }

    fn brbeh(&mut self, toks: &[Tok<'_>], line: u32) -> Result<(), AsmError> {
        if toks.len() < 3 {
            return err(
                AsmErrorKind::BadDirective(".brbeh expects: name kind args".into()),
                line,
                toks[0].col,
            );
        }
        let name = toks[1].text;
        if self.br_names.contains_key(name) {
            return err(
                AsmErrorKind::DuplicateBehavior(name.into()),
                line,
                toks[1].col,
            );
        }
        let kind = toks[2].text;
        let args = &toks[3..];
        let beh = match kind {
            "prob" => {
                let [p] = args else {
                    return err(
                        AsmErrorKind::BadDirective("prob expects one probability".into()),
                        line,
                        toks[2].col,
                    );
                };
                BranchBehavior::TakenProb(parse_f64(p, line)?)
            }
            "loop" => {
                let [t] = args else {
                    return err(
                        AsmErrorKind::BadDirective("loop expects one trip count".into()),
                        line,
                        toks[2].col,
                    );
                };
                BranchBehavior::Loop {
                    trip: parse_u64(t, line)? as u32,
                }
            }
            "pattern" | "trace" => {
                let [p] = args else {
                    return err(
                        AsmErrorKind::BadDirective(format!("{kind} expects one T/N string")),
                        line,
                        toks[2].col,
                    );
                };
                let bits = parse_tn(p, line)?;
                if kind == "pattern" {
                    BranchBehavior::Pattern(bits)
                } else {
                    BranchBehavior::Trace(bits)
                }
            }
            _ => {
                return err(
                    AsmErrorKind::BadDirective(format!(
                        ".brbeh kind {kind:?} (want prob/loop/pattern/trace)"
                    )),
                    line,
                    toks[2].col,
                )
            }
        };
        self.br_names
            .insert(name.to_string(), self.br_behaviors.len() as u32);
        self.br_behaviors.push(beh);
        Ok(())
    }

    fn membeh(&mut self, toks: &[Tok<'_>], line: u32) -> Result<(), AsmError> {
        if toks.len() < 3 {
            return err(
                AsmErrorKind::BadDirective(".membeh expects: name kind args".into()),
                line,
                toks[0].col,
            );
        }
        let name = toks[1].text;
        if self.mem_names.contains_key(name) {
            return err(
                AsmErrorKind::DuplicateBehavior(name.into()),
                line,
                toks[1].col,
            );
        }
        let kind = toks[2].text;
        let args = &toks[3..];
        let beh = match (kind, args) {
            ("stride", [b, s, f]) => MemBehavior::Stride {
                base: parse_u64(b, line)?,
                stride: parse_u64(s, line)?,
                footprint: parse_u64(f, line)?,
            },
            ("random", [b, f]) => MemBehavior::Random {
                base: parse_u64(b, line)?,
                footprint: parse_u64(f, line)?,
            },
            ("hotcold", [b, h, c, p]) => MemBehavior::HotCold {
                base: parse_u64(b, line)?,
                hot: parse_u64(h, line)?,
                cold: parse_u64(c, line)?,
                hot_frac: parse_f64(p, line)?,
            },
            ("trace", [one]) if one.text == "-" => MemBehavior::Trace(Vec::new()),
            ("trace", addrs) if !addrs.is_empty() => {
                let mut v = Vec::with_capacity(addrs.len());
                for a in addrs {
                    v.push(parse_u64(a, line)?);
                }
                MemBehavior::Trace(v)
            }
            _ => {
                return err(
                    AsmErrorKind::BadDirective(format!(
                        ".membeh {kind:?}: want stride B S F | random B F | hotcold B H C P | \
                         trace A.. | trace -"
                    )),
                    line,
                    toks[2].col,
                )
            }
        };
        self.mem_names
            .insert(name.to_string(), self.mem_behaviors.len() as u32);
        self.mem_behaviors.push(beh);
        Ok(())
    }

    fn instruction(&mut self, toks: &[Tok<'_>], line: u32) -> Result<(), AsmError> {
        let mn = toks[0].text;
        let col = toks[0].col;
        let args = &toks[1..];
        let argn = |n: usize| -> Result<(), AsmError> {
            if args.len() == n {
                Ok(())
            } else {
                err(
                    AsmErrorKind::MalformedOperand(format!(
                        "{mn} expects {n} operand(s), got {}",
                        args.len()
                    )),
                    line,
                    col,
                )
            }
        };

        let beh_alu = |class: OpClass, args: &[Tok<'_>]| -> Result<AsmOp, AsmError> {
            let dst = parse_opt_reg(&args[0], line)?;
            let s1 = parse_opt_reg(&args[1], line)?;
            let s2 = parse_opt_reg(&args[2], line)?;
            Ok(AsmOp::Beh(Inst {
                op: class,
                dst,
                src1: s1,
                src2: s2,
                mem: None,
                branch: None,
            }))
        };

        let mut target: Option<RawTarget> = None;
        let op = match mn {
            "int.alu" | "int.mul" | "int.div" | "fp.add" | "fp.mul" | "fp.div" => {
                argn(3)?;
                let class = match mn {
                    "int.alu" => OpClass::IntAlu,
                    "int.mul" => OpClass::IntMul,
                    "int.div" => OpClass::IntDiv,
                    "fp.add" => OpClass::FpAdd,
                    "fp.mul" => OpClass::FpMul,
                    _ => OpClass::FpDiv,
                };
                beh_alu(class, args)?
            }
            "load" => {
                argn(3)?;
                let dst = parse_opt_reg(&args[0], line)?;
                let addr = parse_bracket_reg(&args[1], line)?;
                let mem = self.mem_ref(&args[2], line)?;
                AsmOp::Beh(Inst {
                    op: OpClass::Load,
                    dst,
                    src1: addr,
                    src2: None,
                    mem: Some(mem),
                    branch: None,
                })
            }
            "store" => {
                argn(3)?;
                let data = parse_opt_reg(&args[0], line)?;
                let addr = parse_bracket_reg(&args[1], line)?;
                let mem = self.mem_ref(&args[2], line)?;
                AsmOp::Beh(Inst {
                    op: OpClass::Store,
                    dst: None,
                    src1: addr,
                    src2: data,
                    mem: Some(mem),
                    branch: None,
                })
            }
            "br.cond" => {
                argn(3)?;
                let cond = parse_opt_reg(&args[0], line)?;
                target = Some(parse_target(&args[1], line)?);
                let beh = self.br_ref(&args[2], line)?;
                AsmOp::BehBranch { cond, beh }
            }
            "j" | "jump" => {
                argn(1)?;
                target = Some(parse_target(&args[0], line)?);
                AsmOp::Jump
            }
            "call" => {
                argn(1)?;
                target = Some(parse_target(&args[0], line)?);
                AsmOp::Call
            }
            "ret" => {
                argn(0)?;
                AsmOp::Ret
            }
            "nop" => {
                argn(0)?;
                AsmOp::Beh(Inst::nop())
            }
            "li" => {
                argn(2)?;
                AsmOp::Li {
                    dst: parse_int_reg(&args[0], line)?,
                    imm: parse_i64(&args[1], line)?,
                }
            }
            "fli" => {
                argn(2)?;
                AsmOp::Fli {
                    dst: parse_fp_reg(&args[0], line)?,
                    imm: parse_f64(&args[1], line)?,
                }
            }
            "add" | "sub" | "and" | "or" | "xor" | "sll" | "srl" | "sra" | "slt" | "sltu"
            | "mul" | "div" | "rem" => {
                argn(3)?;
                AsmOp::Int3 {
                    kind: int_kind(mn),
                    dst: parse_int_reg(&args[0], line)?,
                    s1: parse_int_reg(&args[1], line)?,
                    s2: parse_int_reg(&args[2], line)?,
                }
            }
            "addi" | "andi" | "ori" | "xori" | "slli" | "srli" | "srai" | "slti" => {
                argn(3)?;
                AsmOp::IntImm {
                    kind: int_kind(mn.trim_end_matches('i')),
                    dst: parse_int_reg(&args[0], line)?,
                    s1: parse_int_reg(&args[1], line)?,
                    imm: parse_i64(&args[2], line)?,
                }
            }
            "fadd" | "fsub" | "fmul" | "fdiv" => {
                argn(3)?;
                let kind = match mn {
                    "fadd" => FpKind::Add,
                    "fsub" => FpKind::Sub,
                    "fmul" => FpKind::Mul,
                    _ => FpKind::Div,
                };
                AsmOp::Fp3 {
                    kind,
                    dst: parse_fp_reg(&args[0], line)?,
                    s1: parse_fp_reg(&args[1], line)?,
                    s2: parse_fp_reg(&args[2], line)?,
                }
            }
            "feq" | "flt" | "fle" => {
                argn(3)?;
                let kind = match mn {
                    "feq" => CmpKind::Eq,
                    "flt" => CmpKind::Lt,
                    _ => CmpKind::Le,
                };
                AsmOp::FpCmp {
                    kind,
                    dst: parse_int_reg(&args[0], line)?,
                    s1: parse_fp_reg(&args[1], line)?,
                    s2: parse_fp_reg(&args[2], line)?,
                }
            }
            "ld" | "fld" | "st" | "fst" => {
                argn(2)?;
                let fp = mn.starts_with('f');
                let store = mn.ends_with("st");
                let reg = if fp {
                    parse_fp_reg(&args[0], line)?
                } else {
                    parse_int_reg(&args[0], line)?
                };
                let (off, base) = parse_addr(&args[1], line)?;
                AsmOp::MemArch {
                    store,
                    fp,
                    reg,
                    off,
                    base,
                }
            }
            "beqz" | "bnez" => {
                argn(2)?;
                let src = parse_int_reg(&args[0], line)?;
                target = Some(parse_target(&args[1], line)?);
                AsmOp::BrZ {
                    expect_zero: mn == "beqz",
                    src,
                }
            }
            "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
                argn(3)?;
                let s1 = parse_int_reg(&args[0], line)?;
                let s2 = parse_int_reg(&args[1], line)?;
                target = Some(parse_target(&args[2], line)?);
                let kind = match mn {
                    "beq" => BrKind::Eq,
                    "bne" => BrKind::Ne,
                    "blt" => BrKind::Lt,
                    "bge" => BrKind::Ge,
                    "bltu" => BrKind::Ltu,
                    _ => BrKind::Geu,
                };
                AsmOp::BrCmp { kind, s1, s2 }
            }
            _ => return err(AsmErrorKind::UnknownMnemonic(mn.into()), line, col),
        };

        let block = self.blocks.last_mut().expect("open block checked");
        if op.is_terminator() {
            block.closed = true;
            block.taken = target;
        }
        block.insts.push(AsmInst { op, line, col });
        Ok(())
    }

    fn br_ref(&self, tok: &Tok<'_>, line: u32) -> Result<BranchBehaviorId, AsmError> {
        let Some(name) = tok.text.strip_prefix('@') else {
            return err(
                AsmErrorKind::MalformedOperand(format!("expected @behaviour, got {:?}", tok.text)),
                line,
                tok.col,
            );
        };
        match self.br_names.get(name) {
            Some(&id) => Ok(BranchBehaviorId(id)),
            None => err(AsmErrorKind::UnknownBehavior(name.into()), line, tok.col),
        }
    }

    fn mem_ref(&self, tok: &Tok<'_>, line: u32) -> Result<MemBehaviorId, AsmError> {
        let Some(name) = tok.text.strip_prefix('@') else {
            return err(
                AsmErrorKind::MalformedOperand(format!("expected @behaviour, got {:?}", tok.text)),
                line,
                tok.col,
            );
        };
        match self.mem_names.get(name) {
            Some(&id) => Ok(MemBehaviorId(id)),
            None => err(AsmErrorKind::UnknownBehavior(name.into()), line, tok.col),
        }
    }

    fn finish(self) -> Result<AsmModule, AsmError> {
        if self.blocks.is_empty() {
            return err(AsmErrorKind::Program(ProgramError::Empty), 1, 1);
        }
        let mut start_flat = Vec::with_capacity(self.blocks.len());
        let mut total = 0u64;
        for b in &self.blocks {
            start_flat.push(total);
            total += b.insts.len() as u64;
        }
        let resolve = |t: &RawTarget| -> Result<usize, AsmError> {
            let Some(&base) = self.labels.get(&t.label) else {
                return err(AsmErrorKind::UndefinedLabel(t.label.clone()), t.line, t.col);
            };
            if t.offset == 0 {
                return Ok(base);
            }
            let flat = start_flat[base] + t.offset;
            match start_flat.binary_search(&flat) {
                Ok(i) if flat < total => Ok(i),
                _ => err(
                    AsmErrorKind::BranchIntoMidBlock(format!("{}+{}", t.label, t.offset)),
                    t.line,
                    t.col,
                ),
            }
        };

        let entry = match &self.entry {
            Some(t) => resolve(t)?,
            None => 0,
        };

        let nblocks = self.blocks.len();
        let mut blocks = Vec::with_capacity(nblocks);
        for (i, raw) in self.blocks.iter().enumerate() {
            if raw.insts.is_empty() {
                return err(
                    AsmErrorKind::Program(ProgramError::EmptyBlock(crate::program::BlockId(
                        i as u32,
                    ))),
                    raw.line,
                    raw.col,
                );
            }
            let taken = match &raw.taken {
                Some(t) => Some(resolve(t)?),
                None => None,
            };
            let ends_unconditionally = matches!(
                raw.insts.last().map(|x| &x.op),
                Some(AsmOp::Jump) | Some(AsmOp::Ret)
            );
            let fall = match &raw.fall {
                RawFall::To(t) => Some(resolve(t)?),
                RawFall::Exit => None,
                RawFall::Default => {
                    if ends_unconditionally {
                        None
                    } else if i + 1 < nblocks {
                        Some(i + 1)
                    } else {
                        return err(
                            AsmErrorKind::Program(ProgramError::FallsOffEnd(
                                crate::program::BlockId(i as u32),
                            )),
                            raw.line,
                            raw.col,
                        );
                    }
                }
            };
            blocks.push(ModBlock {
                insts: raw.insts.clone(),
                taken,
                fall,
                line: raw.line,
                col: raw.col,
            });
        }

        // Reachability over taken + fall edges from the entry block.
        let mut seen = vec![false; nblocks];
        let mut stack = vec![entry];
        while let Some(b) = stack.pop() {
            if seen[b] {
                continue;
            }
            seen[b] = true;
            for succ in [blocks[b].taken, blocks[b].fall].into_iter().flatten() {
                if !seen[succ] {
                    stack.push(succ);
                }
            }
        }
        if let Some(dead) = seen.iter().position(|&s| !s) {
            return err(
                AsmErrorKind::Program(ProgramError::Unreachable(crate::program::BlockId(
                    dead as u32,
                ))),
                blocks[dead].line,
                blocks[dead].col,
            );
        }

        Ok(AsmModule {
            blocks,
            entry,
            br_behaviors: self.br_behaviors,
            mem_behaviors: self.mem_behaviors,
            start_flat,
        })
    }
}

fn int_kind(mn: &str) -> IntKind {
    match mn {
        "add" => IntKind::Add,
        "sub" => IntKind::Sub,
        "and" => IntKind::And,
        "or" => IntKind::Or,
        "xor" => IntKind::Xor,
        "sll" => IntKind::Sll,
        "srl" => IntKind::Srl,
        "sra" => IntKind::Sra,
        "slt" => IntKind::Slt,
        "sltu" => IntKind::Sltu,
        "mul" => IntKind::Mul,
        "div" => IntKind::Div,
        _ => IntKind::Rem,
    }
}

fn parse_target(tok: &Tok<'_>, line: u32) -> Result<RawTarget, AsmError> {
    let (label, offset) = match tok.text.split_once('+') {
        Some((l, k)) => {
            let off: u64 = k.parse().map_err(|_| AsmError {
                kind: AsmErrorKind::BadImmediate(k.into()),
                line,
                col: tok.col,
            })?;
            (l, off)
        }
        None => (tok.text, 0),
    };
    if label.is_empty() {
        return err(
            AsmErrorKind::MalformedOperand(format!("bad target {:?}", tok.text)),
            line,
            tok.col,
        );
    }
    Ok(RawTarget {
        label: label.to_string(),
        offset,
        line,
        col: tok.col,
    })
}

fn parse_reg(tok: &Tok<'_>, line: u32) -> Result<ArchReg, AsmError> {
    let t = tok.text;
    let (fp, idx) = match t.split_at(1.min(t.len())) {
        ("r", rest) => (false, rest),
        ("f", rest) => (true, rest),
        _ => {
            return err(AsmErrorKind::BadRegister(t.into()), line, tok.col);
        }
    };
    match idx.parse::<u8>() {
        Ok(i) if i < 32 && !idx.starts_with('+') => {
            Ok(if fp { ArchReg::fp(i) } else { ArchReg::int(i) })
        }
        _ => err(AsmErrorKind::BadRegister(t.into()), line, tok.col),
    }
}

fn parse_opt_reg(tok: &Tok<'_>, line: u32) -> Result<Option<ArchReg>, AsmError> {
    if tok.text == "-" {
        Ok(None)
    } else {
        parse_reg(tok, line).map(Some)
    }
}

fn parse_int_reg(tok: &Tok<'_>, line: u32) -> Result<u8, AsmError> {
    match parse_reg(tok, line)? {
        r if !r.is_fp() => Ok(r.index()),
        _ => err(
            AsmErrorKind::BadRegister(format!("{} (integer register required)", tok.text)),
            line,
            tok.col,
        ),
    }
}

fn parse_fp_reg(tok: &Tok<'_>, line: u32) -> Result<u8, AsmError> {
    match parse_reg(tok, line)? {
        r if r.is_fp() => Ok(r.index()),
        _ => err(
            AsmErrorKind::BadRegister(format!("{} (fp register required)", tok.text)),
            line,
            tok.col,
        ),
    }
}

/// `[rN]`, `[fN]` or `[-]` — the behavioral address dependence.
fn parse_bracket_reg(tok: &Tok<'_>, line: u32) -> Result<Option<ArchReg>, AsmError> {
    let inner = tok.text.strip_prefix('[').and_then(|t| t.strip_suffix(']'));
    match inner {
        Some(inner) => parse_opt_reg(
            &Tok {
                text: inner,
                col: tok.col + 1,
            },
            line,
        ),
        None => err(
            AsmErrorKind::MalformedOperand(format!("expected [reg], got {:?}", tok.text)),
            line,
            tok.col,
        ),
    }
}

/// `OFF(rN)` — architectural effective-address operand.
fn parse_addr(tok: &Tok<'_>, line: u32) -> Result<(i64, u8), AsmError> {
    let body = tok.text.strip_suffix(')');
    let parts = body.and_then(|b| b.split_once('('));
    let Some((off_s, base_s)) = parts else {
        return err(
            AsmErrorKind::MalformedOperand(format!("expected OFF(reg), got {:?}", tok.text)),
            line,
            tok.col,
        );
    };
    let off = parse_i64(
        &Tok {
            text: off_s,
            col: tok.col,
        },
        line,
    )?;
    let base = parse_int_reg(
        &Tok {
            text: base_s,
            col: tok.col + off_s.len() as u32 + 1,
        },
        line,
    )?;
    Ok((off, base))
}

fn parse_i64(tok: &Tok<'_>, line: u32) -> Result<i64, AsmError> {
    let t = tok.text;
    let (neg, body) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let parsed = match body.strip_prefix("0x") {
        Some(hex) => i64::from_str_radix(hex, 16),
        None => body.parse::<i64>(),
    };
    match parsed {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => err(AsmErrorKind::BadImmediate(t.into()), line, tok.col),
    }
}

fn parse_u64(tok: &Tok<'_>, line: u32) -> Result<u64, AsmError> {
    let parsed = match tok.text.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => tok.text.parse::<u64>(),
    };
    parsed.map_err(|_| AsmError {
        kind: AsmErrorKind::BadImmediate(tok.text.into()),
        line,
        col: tok.col,
    })
}

fn parse_f64(tok: &Tok<'_>, line: u32) -> Result<f64, AsmError> {
    tok.text.parse::<f64>().map_err(|_| AsmError {
        kind: AsmErrorKind::BadImmediate(tok.text.into()),
        line,
        col: tok.col,
    })
}

/// `TNT..` taken/not-taken string, or `-` for the empty pattern.
fn parse_tn(tok: &Tok<'_>, line: u32) -> Result<Vec<bool>, AsmError> {
    if tok.text == "-" {
        return Ok(Vec::new());
    }
    tok.text
        .chars()
        .map(|c| match c {
            'T' => Ok(true),
            'N' => Ok(false),
            _ => err(
                AsmErrorKind::BadImmediate(format!("{} (want T/N)", tok.text)),
                line,
                tok.col,
            ),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn fmt_opt_reg(r: Option<ArchReg>) -> String {
    match r {
        Some(r) => r.to_string(),
        None => "-".to_string(),
    }
}

fn fmt_tn(bits: &[bool]) -> String {
    if bits.is_empty() {
        return "-".to_string();
    }
    bits.iter().map(|&b| if b { 'T' } else { 'N' }).collect()
}

/// Pretty-prints a validated [`Program`] as `.gasm` text.
///
/// The rendering uses the behavioral vocabulary only (a [`Program`] carries
/// no architectural data), with labels `b0..`, branch behaviours `br0..`
/// and memory behaviours `m0..` in table order — so
/// `parse(print_gasm(p))?.to_program(p.seed())` rebuilds a program equal
/// to `p` (behaviour ids, edges and entry included; pinned by the
/// round-trip proptest in `crates/isa/tests`).
pub fn print_gasm(program: &Program) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, ".entry b{}", program.entry().0);
    for i in 0..program.branch_behavior_count() as u32 {
        let beh = program.branch_behavior(BranchBehaviorId(i));
        let body = match beh {
            BranchBehavior::TakenProb(p) => format!("prob {p:?}"),
            BranchBehavior::Loop { trip } => format!("loop {trip}"),
            BranchBehavior::Pattern(v) => format!("pattern {}", fmt_tn(v)),
            BranchBehavior::Trace(v) => format!("trace {}", fmt_tn(v)),
        };
        let _ = writeln!(s, ".brbeh br{i} {body}");
    }
    for i in 0..program.mem_behavior_count() as u32 {
        let beh = program.mem_behavior(MemBehaviorId(i));
        let body = match beh {
            MemBehavior::Stride {
                base,
                stride,
                footprint,
            } => format!("stride {base} {stride} {footprint}"),
            MemBehavior::Random { base, footprint } => format!("random {base} {footprint}"),
            MemBehavior::HotCold {
                base,
                hot,
                cold,
                hot_frac,
            } => format!("hotcold {base} {hot} {cold} {hot_frac:?}"),
            MemBehavior::Trace(addrs) => {
                if addrs.is_empty() {
                    "trace -".to_string()
                } else {
                    let list: Vec<String> = addrs.iter().map(|a| a.to_string()).collect();
                    format!("trace {}", list.join(" "))
                }
            }
        };
        let _ = writeln!(s, ".membeh m{i} {body}");
    }

    for (bid, block) in program.blocks() {
        let _ = writeln!(s, "b{}:", bid.0);
        let last = block.insts.len() - 1;
        for (i, inst) in block.insts.iter().enumerate() {
            let text = match inst.op {
                OpClass::IntAlu
                | OpClass::IntMul
                | OpClass::IntDiv
                | OpClass::FpAdd
                | OpClass::FpMul
                | OpClass::FpDiv => format!(
                    "{} {}, {}, {}",
                    inst.op,
                    fmt_opt_reg(inst.dst),
                    fmt_opt_reg(inst.src1),
                    fmt_opt_reg(inst.src2)
                ),
                OpClass::Load => format!(
                    "load {}, [{}] @m{}",
                    fmt_opt_reg(inst.dst),
                    fmt_opt_reg(inst.src1),
                    inst.mem.expect("validated load").0
                ),
                OpClass::Store => format!(
                    "store {}, [{}] @m{}",
                    fmt_opt_reg(inst.src2),
                    fmt_opt_reg(inst.src1),
                    inst.mem.expect("validated store").0
                ),
                OpClass::BranchCond => format!(
                    "br.cond {}, b{} @br{}",
                    fmt_opt_reg(inst.src1),
                    block.taken.expect("validated branch").0,
                    inst.branch.expect("validated branch").0
                ),
                OpClass::Jump => format!("j b{}", block.taken.expect("validated jump").0),
                OpClass::Call => format!("call b{}", block.taken.expect("validated call").0),
                OpClass::Ret => "ret".to_string(),
                OpClass::Nop => "nop".to_string(),
            };
            let _ = writeln!(s, "    {text}");
            debug_assert!(i == last || !inst.op.is_branch(), "validated program");
        }
        let ends_unconditionally = matches!(
            block.insts.last().map(|x| x.op),
            Some(OpClass::Jump) | Some(OpClass::Ret)
        );
        match block.fallthrough {
            Some(f) => {
                let is_next = f.0 == bid.0 + 1;
                if ends_unconditionally || !is_next {
                    let _ = writeln!(s, "    .fall b{}", f.0);
                }
            }
            None => {
                if !ends_unconditionally {
                    let _ = writeln!(s, "    .exit");
                }
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_links_a_behavioral_module() {
        let src = "\
.entry top
.brbeh back loop 3
.membeh heap stride 0 8 64
top:
    int.alu r1, r2, -
    load r3, [r1] @heap
    br.cond r1, top @back
done:
    ret
";
        let m = parse(src).expect("parses");
        assert!(!m.has_architectural_ops());
        assert_eq!(m.block_count(), 2);
        let p = m.to_program(7).expect("links");
        assert_eq!(p.static_inst_count(), 4);
        let insts: Vec<_> = crate::stream::DynStream::new(&p).collect();
        // 3 loop trips of 3 insts, then ret.
        assert_eq!(insts.len(), 10);
    }

    #[test]
    fn roundtrips_through_print() {
        let src = "\
.entry top
.brbeh back loop 3
.membeh heap stride 0 8 64
top:
    int.alu r1, r2, -
    br.cond r1, top @back
done:
    store r1, [-] @heap
    .exit
";
        let p = parse(src).unwrap().to_program(5).unwrap();
        let printed = print_gasm(&p);
        let p2 = parse(&printed)
            .expect("printed text parses")
            .to_program(5)
            .expect("links");
        assert_eq!(p, p2);
    }

    #[test]
    fn architectural_ops_require_execution() {
        let src = "main:\n    li r1, 4\n    ret\n";
        let m = parse(src).expect("parses");
        assert!(m.has_architectural_ops());
        let e = m.to_program(0).unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::RequiresExecution(_)));
        assert_eq!((e.line, e.col), (2, 5));
    }

    #[test]
    fn label_plus_k_resolves_to_leaders_only() {
        let ok = "main:\n    nop\n    nop\nnext:\n    j main+2\n";
        assert!(parse(ok).is_ok(), "main+2 is the leader of next");
        let bad = "main:\n    nop\n    nop\nnext:\n    j main+1\n";
        let e = parse(bad).unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::BranchIntoMidBlock(_)));
        assert_eq!((e.line, e.col), (5, 7));
    }

    #[test]
    fn cfg_diagnostics_are_typed() {
        let dead = "main:\n    ret\nlost:\n    ret\n";
        let e = parse(dead).unwrap_err();
        assert!(matches!(
            e.kind,
            AsmErrorKind::Program(ProgramError::Unreachable(_))
        ));
        let off_end = "main:\n    li r1, 1\n";
        let e = parse(off_end).unwrap_err();
        assert!(matches!(
            e.kind,
            AsmErrorKind::Program(ProgramError::FallsOffEnd(_))
        ));
    }

    #[test]
    fn terminators_split_blocks() {
        let src = "main:\n    call fun\n    nop\n    .exit\nfun:\n    ret\n";
        let m = parse(src).expect("anonymous block after call");
        assert_eq!(m.block_count(), 3);
        // call returns to the anonymous fall-through block.
        assert_eq!(m.blocks[0].fall, Some(1));
        assert_eq!(m.blocks[0].taken, Some(2));
    }
}
