//! Static programs: instructions, basic blocks and the control-flow graph.

use std::fmt;

use crate::behavior::{BranchBehavior, BranchBehaviorId, MemBehavior, MemBehaviorId};
use crate::op::{ArchReg, OpClass};

/// Byte size of one encoded instruction (Alpha-like fixed 32-bit encoding);
/// program counters advance in this unit.
pub const INST_BYTES: u64 = 4;

/// Program counter value used to signal program exit.
pub const EXIT_PC: u64 = u64::MAX;

/// Identifier of a basic block within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// One instruction of the timing-semantic ISA.
///
/// Use the constructor helpers ([`Inst::alu`], [`Inst::load`], …) rather than
/// building the struct directly; they enforce the operand shape each class
/// requires.
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// Operation class.
    pub op: OpClass,
    /// Destination architectural register, if any.
    pub dst: Option<ArchReg>,
    /// First source operand.
    pub src1: Option<ArchReg>,
    /// Second source operand.
    pub src2: Option<ArchReg>,
    /// Address-generation behaviour for loads/stores.
    pub mem: Option<MemBehaviorId>,
    /// Outcome behaviour for conditional branches.
    pub branch: Option<BranchBehaviorId>,
}

impl Inst {
    /// A computational instruction (`IntAlu`, `IntMul`, `IntDiv`, `FpAdd`,
    /// `FpMul`, `FpDiv`).
    ///
    /// # Panics
    ///
    /// Panics if `op` is a memory, branch or nop class.
    pub fn alu(op: OpClass, dst: ArchReg, src1: Option<ArchReg>, src2: Option<ArchReg>) -> Self {
        assert!(
            !op.is_mem() && !op.is_branch() && op != OpClass::Nop,
            "Inst::alu used with non-computational class {op}"
        );
        Inst {
            op,
            dst: Some(dst),
            src1,
            src2,
            mem: None,
            branch: None,
        }
    }

    /// A load producing `dst` from the address stream `mem`; `addr_src` is
    /// the address-computation dependence (base register).
    pub fn load(dst: ArchReg, addr_src: Option<ArchReg>, mem: MemBehaviorId) -> Self {
        Inst {
            op: OpClass::Load,
            dst: Some(dst),
            src1: addr_src,
            src2: None,
            mem: Some(mem),
            branch: None,
        }
    }

    /// A store of `data_src` to the address stream `mem`.
    pub fn store(data_src: Option<ArchReg>, addr_src: Option<ArchReg>, mem: MemBehaviorId) -> Self {
        Inst {
            op: OpClass::Store,
            dst: None,
            src1: addr_src,
            src2: data_src,
            mem: Some(mem),
            branch: None,
        }
    }

    /// A conditional branch testing `cond_src`, resolving per `behavior`.
    pub fn branch(cond_src: Option<ArchReg>, behavior: BranchBehaviorId) -> Self {
        Inst {
            op: OpClass::BranchCond,
            dst: None,
            src1: cond_src,
            src2: None,
            mem: None,
            branch: Some(behavior),
        }
    }

    /// An unconditional jump.
    pub fn jump() -> Self {
        Inst {
            op: OpClass::Jump,
            dst: None,
            src1: None,
            src2: None,
            mem: None,
            branch: None,
        }
    }

    /// A call; the return address (the fall-through block) is pushed on the
    /// simulated call stack.
    pub fn call() -> Self {
        Inst {
            op: OpClass::Call,
            dst: None,
            src1: None,
            src2: None,
            mem: None,
            branch: None,
        }
    }

    /// A return popping the simulated call stack.
    pub fn ret() -> Self {
        Inst {
            op: OpClass::Ret,
            dst: None,
            src1: None,
            src2: None,
            mem: None,
            branch: None,
        }
    }

    /// A no-op.
    pub fn nop() -> Self {
        Inst {
            op: OpClass::Nop,
            dst: None,
            src1: None,
            src2: None,
            mem: None,
            branch: None,
        }
    }

    /// Iterates over the instruction's source registers.
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.src1.into_iter().chain(self.src2)
    }
}

/// A straight-line sequence of instructions with at most one terminating
/// control transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// The instructions; a branch may only appear as the final instruction.
    pub insts: Vec<Inst>,
    /// Successor when the terminating branch is taken (or unconditionally
    /// for `Jump`/`Call`).
    pub taken: Option<BlockId>,
    /// Successor when falling through (not-taken path, or no terminator).
    /// `None` means the program exits at the end of this block.
    pub fallthrough: Option<BlockId>,
}

/// Errors detected while validating a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The program has no blocks.
    Empty,
    /// The entry block id is out of range.
    BadEntry(BlockId),
    /// A successor edge points at a missing block.
    BadEdge {
        /// Block holding the edge.
        from: BlockId,
        /// The missing successor.
        to: BlockId,
    },
    /// A branch instruction appears before the end of a block.
    BranchNotTerminator(BlockId, usize),
    /// A block ends in a conditional branch but lacks a taken or
    /// fall-through successor.
    MissingSuccessor(BlockId),
    /// A referenced behaviour id is out of range.
    BadBehavior(BlockId, usize),
    /// A load/store lacks a memory behaviour, or a conditional branch lacks
    /// a branch behaviour.
    MissingBehavior(BlockId, usize),
    /// A block has no instructions.
    EmptyBlock(BlockId),
    /// A block can never be reached from the entry block (reported by the
    /// assembler's CFG verifier — `ProgramBuilder::build` accepts dead
    /// blocks, the `.gasm` front end does not).
    Unreachable(BlockId),
    /// Control can fall off the end of a block that has no fall-through
    /// successor and no exiting terminator (assembler CFG verifier; end a
    /// `.gasm` program with `ret`, `j`, or an explicit `.exit`).
    FallsOffEnd(BlockId),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Empty => write!(f, "program has no blocks"),
            ProgramError::BadEntry(b) => write!(f, "entry block {b:?} does not exist"),
            ProgramError::BadEdge { from, to } => {
                write!(f, "block {from:?} has an edge to missing block {to:?}")
            }
            ProgramError::BranchNotTerminator(b, i) => {
                write!(f, "branch at block {b:?} index {i} is not the terminator")
            }
            ProgramError::MissingSuccessor(b) => {
                write!(
                    f,
                    "conditional branch in block {b:?} needs taken and fallthrough edges"
                )
            }
            ProgramError::BadBehavior(b, i) => {
                write!(
                    f,
                    "instruction at block {b:?} index {i} references a missing behaviour"
                )
            }
            ProgramError::MissingBehavior(b, i) => {
                write!(
                    f,
                    "instruction at block {b:?} index {i} requires a behaviour id"
                )
            }
            ProgramError::EmptyBlock(b) => write!(f, "block {b:?} is empty"),
            ProgramError::Unreachable(b) => {
                write!(f, "block {b:?} is unreachable from the entry block")
            }
            ProgramError::FallsOffEnd(b) => {
                write!(
                    f,
                    "control falls off the end of block {b:?} (no fall-through successor and no \
                     exiting terminator)"
                )
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A validated static program: basic blocks, CFG edges and the behaviour
/// tables resolving dynamic branch outcomes and memory addresses.
///
/// # Examples
///
/// ```
/// use gals_isa::{ProgramBuilder, Inst, OpClass, ArchReg, BranchBehavior};
///
/// let mut b = ProgramBuilder::new(42);
/// let loop_behavior = b.add_branch_behavior(BranchBehavior::Loop { trip: 10 });
/// let body = b.add_block(
///     vec![
///         Inst::alu(OpClass::IntAlu, ArchReg::int(1), Some(ArchReg::int(1)), None),
///         Inst::branch(Some(ArchReg::int(1)), loop_behavior),
///     ],
///     None,
///     None,
/// );
/// b.set_edges(body, Some(body), None); // loop back to itself, exit on fallthrough
/// b.set_entry(body);
/// let program = b.build()?;
/// assert_eq!(program.static_inst_count(), 2);
/// # Ok::<(), gals_isa::ProgramError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    blocks: Vec<BasicBlock>,
    branch_behaviors: Vec<BranchBehavior>,
    mem_behaviors: Vec<MemBehavior>,
    entry: BlockId,
    seed: u64,
    /// Base *instruction index* of each block in the flat layout.
    block_base: Vec<u64>,
    total_insts: u64,
}

impl Program {
    /// The entry block.
    #[inline]
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// The workload seed used to resolve behaviours.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of basic blocks.
    #[inline]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of static instructions.
    #[inline]
    pub fn static_inst_count(&self) -> u64 {
        self.total_insts
    }

    /// Returns a block by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (ids from this program never are).
    #[inline]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// Iterates over `(BlockId, &BasicBlock)`.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// The branch behaviour table entry.
    #[inline]
    pub fn branch_behavior(&self, id: BranchBehaviorId) -> &BranchBehavior {
        &self.branch_behaviors[id.0 as usize]
    }

    /// The memory behaviour table entry.
    #[inline]
    pub fn mem_behavior(&self, id: MemBehaviorId) -> &MemBehavior {
        &self.mem_behaviors[id.0 as usize]
    }

    /// Number of registered branch behaviours (valid ids are `0..count`).
    #[inline]
    pub fn branch_behavior_count(&self) -> usize {
        self.branch_behaviors.len()
    }

    /// Number of registered memory behaviours (valid ids are `0..count`).
    #[inline]
    pub fn mem_behavior_count(&self) -> usize {
        self.mem_behaviors.len()
    }

    /// Flat static index of an instruction (dense over the whole program);
    /// used to key per-static-instruction counters.
    #[inline]
    pub fn flat_index(&self, block: BlockId, index: u32) -> u64 {
        self.block_base[block.0 as usize] + u64::from(index)
    }

    /// Byte program counter of an instruction.
    #[inline]
    pub fn pc_of(&self, block: BlockId, index: u32) -> u64 {
        self.flat_index(block, index) * INST_BYTES
    }

    /// Locates the instruction at byte PC `pc`, returning
    /// `(block, index, &Inst)`; `None` for [`EXIT_PC`] or out-of-range PCs.
    pub fn locate(&self, pc: u64) -> Option<(BlockId, u32, &Inst)> {
        if pc == EXIT_PC || !pc.is_multiple_of(INST_BYTES) {
            return None;
        }
        let flat = pc / INST_BYTES;
        if flat >= self.total_insts {
            return None;
        }
        let bi = match self.block_base.binary_search(&flat) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let block = &self.blocks[bi];
        let index = (flat - self.block_base[bi]) as u32;
        debug_assert!((index as usize) < block.insts.len());
        Some((BlockId(bi as u32), index, &block.insts[index as usize]))
    }

    /// PC of a block's first instruction.
    #[inline]
    pub fn block_start_pc(&self, block: BlockId) -> u64 {
        self.block_base[block.0 as usize] * INST_BYTES
    }

    /// The PC a control transfer at the end of `block` targets when taken,
    /// or `None` if the block has no taken edge.
    pub fn taken_target_pc(&self, block: BlockId) -> Option<u64> {
        self.block(block).taken.map(|b| self.block_start_pc(b))
    }

    /// The PC control falls through to after `block` ([`EXIT_PC`] if the
    /// program exits there).
    pub fn fallthrough_pc(&self, block: BlockId) -> u64 {
        self.block(block)
            .fallthrough
            .map_or(EXIT_PC, |b| self.block_start_pc(b))
    }

    /// The PC of the instruction after `(block, index)` in straight-line
    /// order: the next slot in the block, or the block's fall-through.
    pub fn next_sequential_pc(&self, block: BlockId, index: u32) -> u64 {
        let b = self.block(block);
        if (index as usize) + 1 < b.insts.len() {
            self.pc_of(block, index + 1)
        } else {
            self.fallthrough_pc(block)
        }
    }
}

/// Incremental builder for [`Program`] (see the example on [`Program`]).
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    blocks: Vec<BasicBlock>,
    branch_behaviors: Vec<BranchBehavior>,
    mem_behaviors: Vec<MemBehavior>,
    entry: BlockId,
    seed: u64,
}

impl ProgramBuilder {
    /// Creates an empty builder with a workload seed.
    pub fn new(seed: u64) -> Self {
        ProgramBuilder {
            blocks: Vec::new(),
            branch_behaviors: Vec::new(),
            mem_behaviors: Vec::new(),
            entry: BlockId(0),
            seed,
        }
    }

    /// Registers a branch behaviour; returns its id.
    pub fn add_branch_behavior(&mut self, b: BranchBehavior) -> BranchBehaviorId {
        self.branch_behaviors.push(b);
        BranchBehaviorId(self.branch_behaviors.len() as u32 - 1)
    }

    /// Registers a memory behaviour; returns its id.
    pub fn add_mem_behavior(&mut self, m: MemBehavior) -> MemBehaviorId {
        self.mem_behaviors.push(m);
        MemBehaviorId(self.mem_behaviors.len() as u32 - 1)
    }

    /// Adds a block with the given successor edges; returns its id.
    pub fn add_block(
        &mut self,
        insts: Vec<Inst>,
        taken: Option<BlockId>,
        fallthrough: Option<BlockId>,
    ) -> BlockId {
        self.blocks.push(BasicBlock {
            insts,
            taken,
            fallthrough,
        });
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Rewrites the successor edges of an existing block (needed for loops
    /// and forward references).
    ///
    /// # Panics
    ///
    /// Panics if `block` was not created by this builder.
    pub fn set_edges(
        &mut self,
        block: BlockId,
        taken: Option<BlockId>,
        fallthrough: Option<BlockId>,
    ) {
        let b = &mut self.blocks[block.0 as usize];
        b.taken = taken;
        b.fallthrough = fallthrough;
    }

    /// Sets the entry block (defaults to the first added block).
    pub fn set_entry(&mut self, entry: BlockId) {
        self.entry = entry;
    }

    /// Number of blocks added so far.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Validates and finalises the program.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] describing the first structural problem
    /// found (dangling edge, misplaced branch, missing behaviour, …).
    pub fn build(self) -> Result<Program, ProgramError> {
        if self.blocks.is_empty() {
            return Err(ProgramError::Empty);
        }
        if self.entry.0 as usize >= self.blocks.len() {
            return Err(ProgramError::BadEntry(self.entry));
        }
        let nblocks = self.blocks.len();
        for (bi, block) in self.blocks.iter().enumerate() {
            let bid = BlockId(bi as u32);
            if block.insts.is_empty() {
                return Err(ProgramError::EmptyBlock(bid));
            }
            for succ in [block.taken, block.fallthrough].into_iter().flatten() {
                if succ.0 as usize >= nblocks {
                    return Err(ProgramError::BadEdge {
                        from: bid,
                        to: succ,
                    });
                }
            }
            let last = block.insts.len() - 1;
            for (i, inst) in block.insts.iter().enumerate() {
                if inst.op.is_branch() && i != last {
                    return Err(ProgramError::BranchNotTerminator(bid, i));
                }
                match inst.op {
                    OpClass::BranchCond => {
                        let Some(id) = inst.branch else {
                            return Err(ProgramError::MissingBehavior(bid, i));
                        };
                        if id.0 as usize >= self.branch_behaviors.len() {
                            return Err(ProgramError::BadBehavior(bid, i));
                        }
                        if block.taken.is_none() {
                            return Err(ProgramError::MissingSuccessor(bid));
                        }
                    }
                    OpClass::Jump | OpClass::Call if block.taken.is_none() => {
                        return Err(ProgramError::MissingSuccessor(bid));
                    }
                    OpClass::Load | OpClass::Store => {
                        let Some(id) = inst.mem else {
                            return Err(ProgramError::MissingBehavior(bid, i));
                        };
                        if id.0 as usize >= self.mem_behaviors.len() {
                            return Err(ProgramError::BadBehavior(bid, i));
                        }
                    }
                    _ => {}
                }
            }
        }
        let mut block_base = Vec::with_capacity(nblocks);
        let mut total = 0u64;
        for block in &self.blocks {
            block_base.push(total);
            total += block.insts.len() as u64;
        }
        Ok(Program {
            blocks: self.blocks,
            branch_behaviors: self.branch_behaviors,
            mem_behaviors: self.mem_behaviors,
            entry: self.entry,
            seed: self.seed,
            block_base,
            total_insts: total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::BranchBehavior;

    fn two_block_program() -> Program {
        let mut b = ProgramBuilder::new(7);
        let beh = b.add_branch_behavior(BranchBehavior::Loop { trip: 3 });
        let b0 = b.add_block(
            vec![
                Inst::alu(OpClass::IntAlu, ArchReg::int(1), None, None),
                Inst::branch(Some(ArchReg::int(1)), beh),
            ],
            None,
            None,
        );
        let b1 = b.add_block(vec![Inst::nop()], None, None);
        b.set_edges(b0, Some(b0), Some(b1));
        b.set_edges(b1, None, None);
        b.build().expect("valid program")
    }

    #[test]
    fn pc_layout_is_flat_and_invertible() {
        let p = two_block_program();
        assert_eq!(p.static_inst_count(), 3);
        assert_eq!(p.pc_of(BlockId(0), 0), 0);
        assert_eq!(p.pc_of(BlockId(0), 1), 4);
        assert_eq!(p.pc_of(BlockId(1), 0), 8);
        let (blk, idx, inst) = p.locate(4).expect("pc 4 exists");
        assert_eq!((blk, idx), (BlockId(0), 1));
        assert_eq!(inst.op, OpClass::BranchCond);
        assert!(p.locate(12).is_none());
        assert!(p.locate(EXIT_PC).is_none());
        assert!(p.locate(5).is_none());
    }

    #[test]
    fn edges_and_targets() {
        let p = two_block_program();
        assert_eq!(p.taken_target_pc(BlockId(0)), Some(0));
        assert_eq!(p.fallthrough_pc(BlockId(0)), 8);
        assert_eq!(p.fallthrough_pc(BlockId(1)), EXIT_PC);
        assert_eq!(p.next_sequential_pc(BlockId(0), 0), 4);
        assert_eq!(p.next_sequential_pc(BlockId(0), 1), 8);
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(
            ProgramBuilder::new(0).build().unwrap_err(),
            ProgramError::Empty
        );
    }

    #[test]
    fn dangling_edge_rejected() {
        let mut b = ProgramBuilder::new(0);
        b.add_block(vec![Inst::nop()], Some(BlockId(9)), None);
        assert!(matches!(
            b.build().unwrap_err(),
            ProgramError::BadEdge { .. }
        ));
    }

    #[test]
    fn branch_must_terminate_block() {
        let mut b = ProgramBuilder::new(0);
        let beh = b.add_branch_behavior(BranchBehavior::TakenProb(0.5));
        let blk = b.add_block(vec![Inst::branch(None, beh), Inst::nop()], None, None);
        b.set_edges(blk, Some(blk), Some(blk));
        assert!(matches!(
            b.build().unwrap_err(),
            ProgramError::BranchNotTerminator(_, 0)
        ));
    }

    #[test]
    fn cond_branch_needs_taken_edge() {
        let mut b = ProgramBuilder::new(0);
        let beh = b.add_branch_behavior(BranchBehavior::TakenProb(0.5));
        b.add_block(vec![Inst::branch(None, beh)], None, Some(BlockId(0)));
        assert!(matches!(
            b.build().unwrap_err(),
            ProgramError::MissingSuccessor(_)
        ));
    }

    #[test]
    fn mem_inst_needs_behavior_in_range() {
        let mut b = ProgramBuilder::new(0);
        b.add_block(
            vec![Inst::load(ArchReg::int(1), None, MemBehaviorId(0))],
            None,
            None,
        );
        assert!(matches!(
            b.build().unwrap_err(),
            ProgramError::BadBehavior(_, 0)
        ));
    }

    #[test]
    fn empty_block_rejected() {
        let mut b = ProgramBuilder::new(0);
        b.add_block(vec![], None, None);
        assert!(matches!(
            b.build().unwrap_err(),
            ProgramError::EmptyBlock(_)
        ));
    }

    #[test]
    fn inst_constructors_shape_operands() {
        let ld = Inst::load(ArchReg::int(2), Some(ArchReg::int(3)), MemBehaviorId(0));
        assert_eq!(ld.op, OpClass::Load);
        assert_eq!(ld.dst, Some(ArchReg::int(2)));
        assert_eq!(ld.sources().count(), 1);
        let st = Inst::store(
            Some(ArchReg::int(4)),
            Some(ArchReg::int(5)),
            MemBehaviorId(0),
        );
        assert_eq!(st.dst, None);
        assert_eq!(st.sources().count(), 2);
    }

    #[test]
    #[should_panic(expected = "non-computational")]
    fn alu_constructor_rejects_loads() {
        let _ = Inst::alu(OpClass::Load, ArchReg::int(0), None, None);
    }
}
