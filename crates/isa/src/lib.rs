//! # gals-isa
//!
//! The timing-semantic instruction set used by the GALS reproduction's
//! processor models, replacing the Alpha/PISA binaries consumed by the
//! paper's SimpleScalar-based simulators (see DESIGN.md §2 for the
//! substitution argument).
//!
//! An instruction carries exactly what a cycle-accurate out-of-order
//! pipeline model needs — operation class, register dependences, execution
//! cluster, and references to deterministic *behaviours* that resolve branch
//! outcomes and memory addresses — and no data values. Programs are explicit
//! control-flow graphs ([`Program`]), so the simulated front end can fetch
//! down *wrong paths* after branch mispredictions, which the paper shows is
//! a first-order effect in GALS designs (Figure 8).
//!
//! ## Quick tour
//!
//! ```
//! use gals_isa::*;
//!
//! let mut b = ProgramBuilder::new(0xC0FFEE);
//! let stride = b.add_mem_behavior(MemBehavior::Stride { base: 0, stride: 8, footprint: 1 << 16 });
//! let backedge = b.add_branch_behavior(BranchBehavior::Loop { trip: 100 });
//! let body = b.add_block(
//!     vec![
//!         Inst::load(ArchReg::int(1), Some(ArchReg::int(2)), stride),
//!         Inst::alu(OpClass::IntAlu, ArchReg::int(3), Some(ArchReg::int(1)), None),
//!         Inst::branch(Some(ArchReg::int(3)), backedge),
//!     ],
//!     None,
//!     None,
//! );
//! b.set_edges(body, Some(body), None);
//! let program = b.build()?;
//!
//! let committed: Vec<DynInst> = DynStream::new(&program).collect();
//! assert_eq!(committed.len(), 300); // 100 iterations x 3 instructions
//! # Ok::<(), ProgramError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
mod behavior;
pub mod exec;
mod op;
mod program;
pub mod rng;
mod stream;

pub use asm::{parse, print_gasm, AsmError, AsmErrorKind, AsmModule};
pub use behavior::{BranchBehavior, BranchBehaviorId, MemBehavior, MemBehaviorId};
pub use exec::{ExecError, Execution, TraceStats, NUM_OP_CLASSES};
pub use op::{ArchReg, Cluster, OpClass, NUM_FP_ARCH_REGS, NUM_INT_ARCH_REGS};
pub use program::{
    BasicBlock, BlockId, Inst, Program, ProgramBuilder, ProgramError, EXIT_PC, INST_BYTES,
};
pub use stream::{DynInst, DynStream};
