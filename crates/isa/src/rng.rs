//! Deterministic counter-based hashing used to resolve branch outcomes and
//! memory addresses.
//!
//! The workloads must be *reproducible across clocking configurations*: the
//! base and GALS processors must execute exactly the same dynamic
//! instruction stream so that performance/power deltas are attributable to
//! clocking alone (the paper runs the same binaries on both simulators).
//! Stateless counter hashing gives every (seed, stream, counter) triple a
//! fixed pseudo-random value regardless of simulation order.

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes a (seed, stream, counter) triple to a u64.
#[inline]
pub fn hash3(seed: u64, stream: u64, counter: u64) -> u64 {
    mix64(seed ^ mix64(stream ^ mix64(counter)))
}

/// Hashes a triple to a uniform f64 in [0, 1).
#[inline]
pub fn hash3_f64(seed: u64, stream: u64, counter: u64) -> f64 {
    // 53 high-quality bits -> [0, 1).
    (hash3(seed, stream, counter) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// FNV-1a 64-bit over a byte string: the workspace's stable content hash
/// (also used, with its own pinned copy, by `gals-sweep`'s `RunKey`s).
/// Here it content-addresses `.gasm` program text so a program-driven
/// workload's identity changes whenever its source does.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn mix64_is_deterministic_and_nontrivial() {
        assert_eq!(mix64(0), mix64(0));
        assert_ne!(mix64(0), mix64(1));
        assert_ne!(mix64(1), 1);
    }

    #[test]
    fn hash3_separates_streams() {
        let a = hash3(1, 2, 3);
        assert_eq!(a, hash3(1, 2, 3));
        assert_ne!(a, hash3(1, 2, 4));
        assert_ne!(a, hash3(1, 3, 3));
        assert_ne!(a, hash3(2, 2, 3));
    }

    #[test]
    fn hash3_f64_in_unit_interval() {
        for c in 0..1_000 {
            let v = hash3_f64(42, 7, c);
            assert!((0.0..1.0).contains(&v), "{v} out of range");
        }
    }

    #[test]
    fn hash3_f64_roughly_uniform() {
        let n = 20_000;
        let mean: f64 = (0..n).map(|c| hash3_f64(99, 1, c)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }
}
