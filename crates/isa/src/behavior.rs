//! Dynamic behaviour models for branches and memory references.
//!
//! Real benchmark binaries drive branch predictors and caches with
//! structured, partially predictable streams. Since this reproduction
//! synthesises its workloads (see `gals-workload` and DESIGN.md §2), each
//! static branch/memory instruction references a *behaviour* that
//! deterministically produces its n-th dynamic outcome/address from a seed —
//! giving predictors and caches realistic, learnable structure while keeping
//! every run bit-reproducible.

use crate::rng::{hash3, hash3_f64};

/// Identifier of a [`BranchBehavior`] registered in a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchBehaviorId(pub u32);

/// Identifier of a [`MemBehavior`] registered in a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemBehaviorId(pub u32);

/// How a static conditional branch resolves over its dynamic executions.
#[derive(Debug, Clone, PartialEq)]
pub enum BranchBehavior {
    /// Taken with fixed probability per execution (counter-hashed, i.i.d.).
    /// `TakenProb(0.5)` is essentially unpredictable; `TakenProb(0.95)` is
    /// highly biased and easy for a bimodal/gshare predictor.
    TakenProb(f64),
    /// Loop back-edge: taken `trip - 1` times, then not taken, repeating.
    /// Captures the dominant, highly predictable branch population of
    /// loop-heavy codes (e.g. *fpppp*, *swim*).
    Loop {
        /// Trip count of the loop (>= 1).
        trip: u32,
    },
    /// A fixed repeating taken/not-taken pattern (e.g. data-dependent but
    /// periodic control, common in media kernels).
    Pattern(Vec<bool>),
    /// Replay of a recorded outcome stream: execution `n` resolves to the
    /// `n`-th recorded bit, and `false` past the end of the recording.
    ///
    /// Produced by the `.gasm` executor (`gals_isa::exec`) for
    /// *architectural* conditional branches, whose outcomes were computed
    /// from real register values: the committed-path walk replays the
    /// recording exactly, while wrong-path fetches past the end see a
    /// well-defined (not-taken) answer.
    Trace(Vec<bool>),
}

impl BranchBehavior {
    /// Resolves the `n`-th dynamic execution of the branch.
    ///
    /// `seed` is the program seed and `stream` a unique id of the static
    /// branch so distinct branches see independent randomness.
    pub fn outcome(&self, seed: u64, stream: u64, n: u64) -> bool {
        match self {
            BranchBehavior::TakenProb(p) => hash3_f64(seed, stream, n) < *p,
            BranchBehavior::Loop { trip } => {
                let trip = u64::from((*trip).max(1));
                (n % trip) != trip - 1
            }
            BranchBehavior::Pattern(pattern) => {
                if pattern.is_empty() {
                    false
                } else {
                    pattern[(n % pattern.len() as u64) as usize]
                }
            }
            BranchBehavior::Trace(trace) => usize::try_from(n)
                .ok()
                .and_then(|i| trace.get(i).copied())
                .unwrap_or(false),
        }
    }

    /// Long-run fraction of executions that are taken.
    pub fn taken_rate(&self) -> f64 {
        match self {
            BranchBehavior::TakenProb(p) => *p,
            BranchBehavior::Loop { trip } => {
                let t = f64::from((*trip).max(1));
                (t - 1.0) / t
            }
            BranchBehavior::Pattern(p) | BranchBehavior::Trace(p) => {
                if p.is_empty() {
                    0.0
                } else {
                    p.iter().filter(|&&b| b).count() as f64 / p.len() as f64
                }
            }
        }
    }
}

/// How a static load/store generates its dynamic addresses.
///
/// Addresses are byte addresses in a flat 64-bit space; footprints control
/// cache behaviour (16 KB L1 / 256 KB L2 in the paper's configuration).
#[derive(Debug, Clone, PartialEq)]
pub enum MemBehavior {
    /// Sequential walk: `base + (n * stride) % footprint`. High spatial
    /// locality; hits in L1 for small footprints, streams through L2 for
    /// large ones.
    Stride {
        /// Starting byte address of the region.
        base: u64,
        /// Byte step per dynamic execution.
        stride: u64,
        /// Region size in bytes (wraps around).
        footprint: u64,
    },
    /// Uniform random within a footprint: low locality, miss rate set by
    /// footprint vs cache size.
    Random {
        /// Starting byte address of the region.
        base: u64,
        /// Region size in bytes.
        footprint: u64,
    },
    /// Replay of a recorded address stream (from executed `.gasm` loads and
    /// stores whose effective addresses came from real register values).
    /// Execution `n` reads entry `n % len`; the wrap keeps the behaviour
    /// total so wrong-path address queries past the end of the recording
    /// stay well defined. An empty recording answers address 0.
    Trace(Vec<u64>),
    /// 90/10-style hot/cold mix: probability `hot_frac` of touching a small
    /// hot region, else a large cold region. Models stack+heap mixtures.
    HotCold {
        /// Starting byte address.
        base: u64,
        /// Size of the frequently touched region.
        hot: u64,
        /// Size of the rarely touched region (placed after the hot one).
        cold: u64,
        /// Probability of a hot access, in [0, 1].
        hot_frac: f64,
    },
}

impl MemBehavior {
    /// Produces the `n`-th dynamic byte address of the reference.
    pub fn address(&self, seed: u64, stream: u64, n: u64) -> u64 {
        match self {
            MemBehavior::Stride {
                base,
                stride,
                footprint,
            } => {
                let fp = (*footprint).max(1);
                base + (n.wrapping_mul(*stride)) % fp
            }
            MemBehavior::Random { base, footprint } => {
                let fp = (*footprint).max(1);
                base + hash3(seed, stream, n) % fp
            }
            MemBehavior::Trace(trace) => {
                if trace.is_empty() {
                    0
                } else {
                    trace[(n % trace.len() as u64) as usize]
                }
            }
            MemBehavior::HotCold {
                base,
                hot,
                cold,
                hot_frac,
            } => {
                let hot_sz = (*hot).max(1);
                let cold_sz = (*cold).max(1);
                if hash3_f64(seed, stream ^ 0xABCD, n) < *hot_frac {
                    base + hash3(seed, stream, n) % hot_sz
                } else {
                    base + hot_sz + hash3(seed, stream, n) % cold_sz
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_behavior_matches_trip_count() {
        let b = BranchBehavior::Loop { trip: 4 };
        let outs: Vec<bool> = (0..8).map(|n| b.outcome(1, 2, n)).collect();
        assert_eq!(outs, [true, true, true, false, true, true, true, false]);
        assert!((b.taken_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn taken_prob_converges() {
        let b = BranchBehavior::TakenProb(0.8);
        let n = 20_000;
        let taken = (0..n).filter(|&i| b.outcome(3, 9, i)).count();
        let rate = taken as f64 / n as f64;
        assert!((rate - 0.8).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn pattern_repeats() {
        let b = BranchBehavior::Pattern(vec![true, false, false]);
        assert!(b.outcome(0, 0, 0));
        assert!(!b.outcome(0, 0, 1));
        assert!(!b.outcome(0, 0, 2));
        assert!(b.outcome(0, 0, 3));
        assert!((b.taken_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_pattern_is_never_taken() {
        let b = BranchBehavior::Pattern(vec![]);
        assert!(!b.outcome(0, 0, 0));
        assert_eq!(b.taken_rate(), 0.0);
    }

    #[test]
    fn stride_addresses_wrap_in_footprint() {
        let m = MemBehavior::Stride {
            base: 0x1000,
            stride: 8,
            footprint: 32,
        };
        let addrs: Vec<u64> = (0..6).map(|n| m.address(0, 0, n)).collect();
        assert_eq!(addrs, [0x1000, 0x1008, 0x1010, 0x1018, 0x1000, 0x1008]);
    }

    #[test]
    fn random_addresses_stay_in_footprint() {
        let m = MemBehavior::Random {
            base: 0x4000,
            footprint: 1024,
        };
        for n in 0..1_000 {
            let a = m.address(7, 3, n);
            assert!((0x4000..0x4400).contains(&a));
        }
    }

    #[test]
    fn hotcold_respects_fraction() {
        let m = MemBehavior::HotCold {
            base: 0,
            hot: 64,
            cold: 1 << 20,
            hot_frac: 0.9,
        };
        let n = 10_000;
        let hot_hits = (0..n).filter(|&i| m.address(5, 11, i) < 64).count();
        let frac = hot_hits as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.02, "hot fraction {frac}");
    }

    #[test]
    fn trace_branch_replays_then_defaults_not_taken() {
        let b = BranchBehavior::Trace(vec![true, false, true]);
        let outs: Vec<bool> = (0..5).map(|n| b.outcome(9, 9, n)).collect();
        assert_eq!(outs, [true, false, true, false, false]);
        assert!((b.taken_rate() - 2.0 / 3.0).abs() < 1e-12);
        let empty = BranchBehavior::Trace(vec![]);
        assert!(!empty.outcome(0, 0, 0));
        assert_eq!(empty.taken_rate(), 0.0);
    }

    #[test]
    fn trace_mem_wraps_and_empty_answers_zero() {
        let m = MemBehavior::Trace(vec![0x10, 0x20, 0x30]);
        let addrs: Vec<u64> = (0..5).map(|n| m.address(1, 2, n)).collect();
        assert_eq!(addrs, [0x10, 0x20, 0x30, 0x10, 0x20]);
        assert_eq!(MemBehavior::Trace(vec![]).address(1, 2, 99), 0);
    }

    #[test]
    fn behaviors_are_deterministic() {
        let b = BranchBehavior::TakenProb(0.5);
        let m = MemBehavior::Random {
            base: 0,
            footprint: 4096,
        };
        for n in 0..100 {
            assert_eq!(b.outcome(1, 2, n), b.outcome(1, 2, n));
            assert_eq!(m.address(1, 2, n), m.address(1, 2, n));
        }
    }
}
