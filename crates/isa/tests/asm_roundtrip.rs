//! Round-trip and diagnostic properties of the `.gasm` front end.
//!
//! The printer and the parser are two descriptions of the same format;
//! these tests keep them from drifting: any behavioural [`Program`] the
//! builder can express must survive `print_gasm` → `parse` → `to_program`
//! bit-identically (same blocks, edges, behaviours, seed), the printed
//! text itself must be a fixed point, and the parser's typed errors must
//! land on the right line and column.

use gals_isa::{
    parse, print_gasm, ArchReg, AsmErrorKind, BranchBehavior, Inst, MemBehavior, OpClass, Program,
    ProgramBuilder,
};
use proptest::prelude::*;

/// Tiny deterministic generator state (the proptest stub draws the seed;
/// everything below is a pure function of it, so failures replay).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        // xorshift64*; never zero for a non-zero state.
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn prob(&mut self) -> f64 {
        // A dyadic rational in (0, 1): exact in f64, exact through Debug.
        (1 + self.below(1022)) as f64 / 1024.0
    }
}

/// Builds a random valid, fully reachable behavioural program: a linear
/// fall-through chain of blocks whose terminators (conditional branches
/// and calls) target arbitrary block leaders, closed by a `ret`.
fn random_program(seed: u64) -> Program {
    let mut g = Gen(seed | 1);
    let mut b = ProgramBuilder::new(g.next());

    let brs: Vec<_> = (0..1 + g.below(3))
        .map(|_| {
            let beh = match g.below(4) {
                0 => BranchBehavior::TakenProb(g.prob()),
                1 => BranchBehavior::Loop {
                    trip: 2 + g.below(50) as u32,
                },
                2 => {
                    BranchBehavior::Pattern((0..1 + g.below(8)).map(|_| g.below(2) == 0).collect())
                }
                _ => BranchBehavior::Trace((0..g.below(6)).map(|_| g.below(2) == 0).collect()),
            };
            b.add_branch_behavior(beh)
        })
        .collect();
    let mems: Vec<_> = (0..1 + g.below(3))
        .map(|_| {
            let beh = match g.below(4) {
                0 => MemBehavior::Stride {
                    base: g.below(1 << 20),
                    stride: 8 << g.below(3),
                    footprint: 64 + g.below(1 << 16),
                },
                1 => MemBehavior::Random {
                    base: g.below(1 << 20),
                    footprint: 64 + g.below(1 << 16),
                },
                2 => MemBehavior::HotCold {
                    base: g.below(1 << 20),
                    hot: 64 + g.below(1 << 10),
                    cold: 1 << 16,
                    hot_frac: g.prob(),
                },
                _ => MemBehavior::Trace((0..g.below(5)).map(|_| g.below(1 << 24)).collect()),
            };
            b.add_mem_behavior(beh)
        })
        .collect();

    let nblocks = 2 + g.below(6) as usize;
    let mut ids = Vec::new();
    // Remember what each block ends with: 0 = plain fallthrough,
    // 1 = conditional branch, 2 = call, 3 = ret.
    let mut kinds = Vec::new();
    for bi in 0..nblocks {
        let mut insts = Vec::new();
        for _ in 0..1 + g.below(4) {
            let reg = |g: &mut Gen, fp: bool| {
                if fp {
                    ArchReg::fp(g.below(32) as u8)
                } else {
                    ArchReg::int(g.below(32) as u8)
                }
            };
            let inst = match g.below(5) {
                0 => {
                    let mem = mems[g.below(mems.len() as u64) as usize];
                    let addr = (g.below(2) == 0).then(|| reg(&mut g, false));
                    let fp = g.below(2) == 0;
                    Inst::load(reg(&mut g, fp), addr, mem)
                }
                1 => {
                    let mem = mems[g.below(mems.len() as u64) as usize];
                    let data = (g.below(2) == 0).then(|| reg(&mut g, false));
                    let addr = (g.below(2) == 0).then(|| reg(&mut g, false));
                    Inst::store(data, addr, mem)
                }
                2 => Inst::nop(),
                3 => {
                    let op = [OpClass::FpAdd, OpClass::FpMul, OpClass::FpDiv][g.below(3) as usize];
                    let s1 = (g.below(2) == 0).then(|| reg(&mut g, true));
                    Inst::alu(op, reg(&mut g, true), s1, None)
                }
                _ => {
                    let op =
                        [OpClass::IntAlu, OpClass::IntMul, OpClass::IntDiv][g.below(3) as usize];
                    let s1 = (g.below(2) == 0).then(|| reg(&mut g, false));
                    let s2 = (g.below(2) == 0).then(|| reg(&mut g, false));
                    Inst::alu(op, reg(&mut g, false), s1, s2)
                }
            };
            insts.push(inst);
        }
        let kind = if bi == nblocks - 1 {
            insts.push(Inst::ret());
            3
        } else if g.below(3) == 0 {
            let cond = (g.below(2) == 0).then(|| ArchReg::int(g.below(32) as u8));
            insts.push(Inst::branch(cond, brs[g.below(brs.len() as u64) as usize]));
            1
        } else if g.below(4) == 0 {
            insts.push(Inst::call());
            2
        } else {
            0
        };
        kinds.push(kind);
        ids.push(b.add_block(insts, None, None));
    }

    // Edges: every non-last block falls through to the next (keeping the
    // whole chain reachable); branch/call taken targets are arbitrary
    // block leaders. Plain blocks and the final `ret` carry no taken edge.
    for bi in 0..nblocks {
        let fall = (bi + 1 < nblocks).then(|| ids[bi + 1]);
        let taken = matches!(kinds[bi], 1 | 2).then(|| ids[g.below(nblocks as u64) as usize]);
        b.set_edges(ids[bi], taken, fall);
    }
    b.build().expect("generator produced an invalid program")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// print → parse → link is the identity on behavioural programs, and
    /// the printed text is a fixed point of the round trip.
    #[test]
    fn print_parse_roundtrip_is_identity(seed in 1u64..1_000_000u64) {
        let program = random_program(seed);
        let text = print_gasm(&program);
        let module = parse(&text)
            .unwrap_or_else(|e| panic!("printed program must parse: {e}\n{text}"));
        prop_assert!(!module.has_architectural_ops());
        let back = module
            .to_program(program.seed())
            .unwrap_or_else(|e| panic!("printed program must link: {e}\n{text}"));
        prop_assert_eq!(&back, &program);
        // Printing the reparsed program reproduces the text exactly.
        prop_assert_eq!(print_gasm(&back), text);
    }
}

#[test]
fn undefined_label_reports_the_target_position() {
    let err = parse(
        "\
.entry main
.brbeh b0 prob 0.5
main:
    addi r1, r1, 1
    br.cond r1, nowhere @b0
",
    )
    .expect_err("undefined label must not parse");
    assert_eq!(err.kind, AsmErrorKind::UndefinedLabel("nowhere".into()));
    assert_eq!((err.line, err.col), (5, 17));
    assert!(err.to_string().contains("line 5:17"), "{err}");
}

#[test]
fn branch_into_mid_block_is_rejected_with_position() {
    let err = parse(
        "\
.entry main
main:
    addi r1, r1, 1
    addi r2, r2, 1
    beqz r1, main+1
",
    )
    .expect_err("mid-block target must not parse");
    assert!(
        matches!(err.kind, AsmErrorKind::BranchIntoMidBlock(_)),
        "{err:?}"
    );
    assert_eq!(err.line, 5);
}

#[test]
fn malformed_operands_carry_line_and_column() {
    // A load without its offset(base) address form.
    let err = parse(
        "\
.entry main
main:
    ld r1, r2
    ret
",
    )
    .expect_err("malformed operand must not parse");
    assert!(
        matches!(err.kind, AsmErrorKind::MalformedOperand(_)),
        "{err:?}"
    );
    assert_eq!(err.line, 3);
    assert!(err.col > 1);

    // An out-of-range register.
    let err = parse(
        "\
.entry main
main:
    addi r32, r1, 1
    ret
",
    )
    .expect_err("r32 must not parse");
    assert!(matches!(err.kind, AsmErrorKind::BadRegister(_)), "{err:?}");
    assert_eq!(err.line, 3);

    // An unknown mnemonic names itself.
    let err = parse(
        "\
.entry main
main:
    frobnicate r1
",
    )
    .expect_err("unknown mnemonic must not parse");
    assert!(
        matches!(err.kind, AsmErrorKind::UnknownMnemonic(_)),
        "{err:?}"
    );
    assert_eq!((err.line, err.col), (3, 5));
}
