//! Clock domains of the paper's five-domain GALS processor.

use std::fmt;

use gals_events::Time;

/// The five locally synchronous blocks of the paper's GALS processor
/// (Figure 3b), in domain-number order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Domain {
    /// Domain 1: L1 I-cache + branch predictor (fetch front end).
    Fetch,
    /// Domain 2: decode, rename, register file and commit.
    Decode,
    /// Domain 3: integer issue queue + integer ALUs.
    IntCluster,
    /// Domain 4: FP issue queue + FP ALUs.
    FpCluster,
    /// Domain 5: memory issue queue + D-cache + L2.
    MemCluster,
}

impl Domain {
    /// All domains, in paper order 1..=5.
    pub const ALL: [Domain; 5] = [
        Domain::Fetch,
        Domain::Decode,
        Domain::IntCluster,
        Domain::FpCluster,
        Domain::MemCluster,
    ];

    /// Dense index 0..5 (paper domain number minus one).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Domain::Fetch => 0,
            Domain::Decode => 1,
            Domain::IntCluster => 2,
            Domain::FpCluster => 3,
            Domain::MemCluster => 4,
        }
    }

    /// The paper's domain number (1..=5).
    #[inline]
    pub fn number(self) -> u8 {
        self.index() as u8 + 1
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Domain::Fetch => "fetch",
            Domain::Decode => "decode",
            Domain::IntCluster => "int",
            Domain::FpCluster => "fp",
            Domain::MemCluster => "mem",
        };
        f.write_str(name)
    }
}

/// A local clock: period and initial phase.
///
/// The paper sets "the starting phase of each clock ... to a random value at
/// runtime"; [`ClockSpec::with_random_phase`] reproduces that.
///
/// # Examples
///
/// ```
/// use gals_clocks::ClockSpec;
/// use gals_events::Time;
///
/// let ghz = ClockSpec::from_ghz(1.0);
/// assert_eq!(ghz.period, Time::from_ns(1));
/// let slowed = ghz.slowed(1.5);
/// assert_eq!(slowed.period, Time::from_ps(1_500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockSpec {
    /// Clock period.
    pub period: Time,
    /// Time of the first rising edge.
    pub phase: Time,
}

impl ClockSpec {
    /// A clock with the given period and zero phase.
    pub fn new(period: Time) -> Self {
        assert!(period > Time::ZERO, "clock period must be non-zero");
        ClockSpec {
            period,
            phase: Time::ZERO,
        }
    }

    /// A clock specified in GHz (period rounded to the nearest femtosecond).
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not finite and positive.
    pub fn from_ghz(ghz: f64) -> Self {
        assert!(ghz.is_finite() && ghz > 0.0, "frequency must be positive");
        Self::new(Time::from_fs((1e6 / ghz).round() as u64))
    }

    /// Frequency in GHz.
    pub fn ghz(&self) -> f64 {
        1e6 / self.period.as_fs() as f64
    }

    /// The same clock slowed by `factor` (1.1 = 10% slower; the paper's
    /// experiments use 1.1, 1.2, 1.5, 2.0 and 3.0).
    #[must_use]
    pub fn slowed(&self, factor: f64) -> Self {
        assert!(factor >= 1.0, "slowdown factor must be >= 1");
        ClockSpec {
            period: self.period.scale(factor),
            phase: self.phase,
        }
    }

    /// The same clock with a deterministic pseudo-random phase in
    /// `[0, period)` derived from `seed` and `stream`.
    #[must_use]
    pub fn with_random_phase(&self, seed: u64, stream: u64) -> Self {
        let r = gals_isa::rng::hash3(seed, stream, 0);
        ClockSpec {
            period: self.period,
            phase: Time::from_fs(r % self.period.as_fs()),
        }
    }

    /// The first edge at or after `t`.
    pub fn next_edge_at_or_after(&self, t: Time) -> Time {
        if t <= self.phase {
            return self.phase;
        }
        let delta = t - self.phase;
        let periods = delta.as_fs().div_ceil(self.period.as_fs());
        self.phase + self.period * periods
    }

    /// The first edge strictly after `t`.
    pub fn next_edge_after(&self, t: Time) -> Time {
        let e = self.next_edge_at_or_after(t);
        if e == t {
            e + self.period
        } else {
            e
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_indexing() {
        for (i, d) in Domain::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
            assert_eq!(d.number() as usize, i + 1);
        }
        assert_eq!(format!("{}", Domain::MemCluster), "mem");
    }

    #[test]
    fn ghz_round_trip() {
        let c = ClockSpec::from_ghz(1.0);
        assert_eq!(c.period, Time::from_ns(1));
        assert!((c.ghz() - 1.0).abs() < 1e-12);
        let c2 = ClockSpec::from_ghz(2.5);
        assert_eq!(c2.period, Time::from_fs(400_000));
    }

    #[test]
    fn slowdown_scales_period() {
        let c = ClockSpec::from_ghz(1.0);
        assert_eq!(c.slowed(1.1).period, Time::from_fs(1_100_000));
        assert_eq!(c.slowed(3.0).period, Time::from_ns(3));
    }

    #[test]
    fn random_phase_is_deterministic_and_bounded() {
        let c = ClockSpec::from_ghz(1.0);
        let a = c.with_random_phase(42, 1);
        let b = c.with_random_phase(42, 1);
        assert_eq!(a, b);
        assert!(a.phase < c.period);
        let other = c.with_random_phase(42, 2);
        assert_ne!(a.phase, other.phase, "different streams, different phases");
    }

    #[test]
    fn edge_calculations() {
        let c = ClockSpec {
            period: Time::from_ns(2),
            phase: Time::from_ps(500),
        };
        assert_eq!(c.next_edge_at_or_after(Time::ZERO), Time::from_ps(500));
        assert_eq!(
            c.next_edge_at_or_after(Time::from_ps(500)),
            Time::from_ps(500)
        );
        assert_eq!(
            c.next_edge_at_or_after(Time::from_ps(501)),
            Time::from_ps(2_500)
        );
        assert_eq!(c.next_edge_after(Time::from_ps(500)), Time::from_ps(2_500));
        assert_eq!(c.next_edge_after(Time::ZERO), Time::from_ps(500));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_rejected() {
        let _ = ClockSpec::new(Time::ZERO);
    }
}
