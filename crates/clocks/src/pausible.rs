//! Pausible/stretchable clocking, the alternative to FIFO-based
//! communication that the paper's section 3.2 argues against.
//!
//! Stretchable clocking performs each inter-domain transaction by stretching
//! one phase of *both* participating clocks while the handshake completes
//! (an arbiter inside each ring oscillator). "In a processor pipeline,
//! transactions occur practically during every cycle. Stretching the clock
//! every cycle would lead to a situation where the effective clock
//! frequency is determined not by the clock generator but by the rate of
//! communication with other synchronous modules." This model quantifies that
//! objection analytically; since pausible clocking became a simulated mode
//! (`Clocking::Pausible` in `gals-core`, built on the schedulers' clock
//! stretching), the model also parameterises the simulated machine's
//! handshake and serves as a cross-check against the measured per-domain
//! effective frequencies (see the `ablation_pausible` binary).

use gals_events::Time;

use crate::domain::ClockSpec;

/// How the pausible machine models the *capacity* of an inter-domain
/// channel — the second half of the section-3.2 cost account, next to the
/// handshake timing of [`PausibleClockModel`].
///
/// A pausible interface has no synchronisers and therefore, in its purest
/// form, no buffering either: the transfer is a rendezvous between the two
/// held clocks. [`PausibleModel::Latched`] keeps the simulator's full latch
/// capacity on every crossing (charging only the handshake *timing*);
/// [`PausibleModel::Rendezvous`] strips the crossings down to single-entry
/// rendezvous ports ([`crate::Channel::rendezvous`]), so a producer whose
/// port is still occupied blocks until the consumer actually pops —
/// charging the capacity cost too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PausibleModel {
    /// Inter-domain channels keep their full latch capacity; only the
    /// handshake timing is charged. The optimistic reading of the paper's
    /// pausible machine, and the default.
    #[default]
    Latched,
    /// Inter-domain channels are single-entry rendezvous ports: a push
    /// requires the previous item to have been popped, so producers block
    /// (park-and-retry) on occupied ports and the capacity cost of
    /// unbuffered handshakes is charged alongside the timing cost.
    Rendezvous,
}

/// First-order timing model of a pausible-clock interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PausibleClockModel {
    /// Duration of one handshake (arbiter settle + data transfer) that the
    /// participating clocks must stall for.
    pub handshake: Time,
}

impl PausibleClockModel {
    /// A model with the given handshake duration.
    pub fn new(handshake: Time) -> Self {
        PausibleClockModel { handshake }
    }

    /// Effective period of a clock that performs `transactions_per_cycle`
    /// stretch-inducing transactions per nominal cycle: each transaction
    /// extends the cycle by the handshake time.
    ///
    /// # Panics
    ///
    /// Panics if `transactions_per_cycle` is negative or not finite.
    pub fn effective_period(&self, clock: ClockSpec, transactions_per_cycle: f64) -> Time {
        assert!(
            transactions_per_cycle.is_finite() && transactions_per_cycle >= 0.0,
            "transaction rate must be non-negative"
        );
        let stretch = (self.handshake.as_fs() as f64 * transactions_per_cycle).round() as u64;
        clock.period + Time::from_fs(stretch)
    }

    /// Throughput degradation factor (effective period / nominal period);
    /// 1.0 means no loss.
    pub fn slowdown(&self, clock: ClockSpec, transactions_per_cycle: f64) -> f64 {
        self.effective_period(clock, transactions_per_cycle).as_fs() as f64
            / clock.period.as_fs() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_transactions_no_stretch() {
        let m = PausibleClockModel::new(Time::from_ps(300));
        let c = ClockSpec::from_ghz(1.0);
        assert_eq!(m.effective_period(c, 0.0), c.period);
        assert_eq!(m.slowdown(c, 0.0), 1.0);
    }

    #[test]
    fn every_cycle_transactions_dominate() {
        // A 1 GHz clock stretching 300 ps per cycle runs at 1.3 ns/cycle:
        // the communication rate, not the oscillator, sets the frequency.
        let m = PausibleClockModel::new(Time::from_ps(300));
        let c = ClockSpec::from_ghz(1.0);
        assert_eq!(m.effective_period(c, 1.0), Time::from_ps(1_300));
        assert!((m.slowdown(c, 1.0) - 1.3).abs() < 1e-9);
    }

    #[test]
    fn stretch_scales_with_rate() {
        let m = PausibleClockModel::new(Time::from_ps(200));
        let c = ClockSpec::from_ghz(2.0); // 500 ps
        assert!((m.slowdown(c, 0.5) - 1.2).abs() < 1e-9);
        assert!((m.slowdown(c, 2.0) - 1.8).abs() < 1e-9);
    }
}
