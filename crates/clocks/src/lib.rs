//! # gals-clocks
//!
//! Clocking infrastructure for the GALS reproduction: the five clock
//! domains of the paper's processor ([`Domain`], [`ClockSpec`]), the
//! mixed-clock asynchronous FIFO / synchronous latch channel
//! ([`Channel`]), the dynamic-voltage-scaling law of the paper's
//! equation (1) ([`VoltageScaling`]) and the pausible-clock alternative
//! ([`PausibleClockModel`]) used in the ablation benchmarks.
//!
//! ## Channels unify both machines
//!
//! The synchronous baseline and the GALS processor differ *only* in how
//! their pipeline stages are connected:
//!
//! ```
//! use gals_clocks::Channel;
//! use gals_events::Time;
//!
//! // Baseline: an ordinary pipeline latch.
//! let base: Channel<u64> = Channel::sync_latch(8);
//! // GALS: a Chelcea–Nowick-style FIFO whose empty/full flags take one
//! // period of the opposite clock to synchronise.
//! let gals: Channel<u64> =
//!     Channel::mixed_clock_fifo(8, Time::from_ns(1), Time::from_ns(1));
//! assert_eq!(base.capacity(), gals.capacity());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod channel;
mod domain;
mod dvfs;
mod pausible;

pub use channel::{Channel, ChannelStats};
pub use domain::{ClockSpec, Domain};
pub use dvfs::VoltageScaling;
pub use pausible::{PausibleClockModel, PausibleModel};
