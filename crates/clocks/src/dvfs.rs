//! Dynamic voltage scaling: the paper's equation (1).
//!
//! The delay of CMOS logic at supply voltage `Vdd` follows
//!
//! ```text
//! D ∝ Vdd / (Vdd - Vt)^α                                   (1)
//! ```
//!
//! with threshold voltage `Vt` and a technology exponent `α` (2.0 at
//! 0.35 µm, between 1 and 2 below; the paper uses α = 1.6 for 0.13 µm
//! devices). When a clock domain is slowed by a factor `s ≥ 1`, its supply
//! can be reduced to the voltage at which delay grows by exactly `s`;
//! dynamic energy then scales by `(V/Vnom)²`.

/// The voltage/delay law of one process technology.
///
/// # Examples
///
/// ```
/// use gals_clocks::VoltageScaling;
///
/// let tech = VoltageScaling::cmos_013um();
/// // Slowing a domain 2x lets Vdd drop well below nominal…
/// let v = tech.vdd_for_slowdown(2.0);
/// assert!(v < tech.vdd_nominal);
/// // …and dynamic energy falls quadratically.
/// let e = tech.energy_factor_for_slowdown(2.0);
/// assert!(e < 0.6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageScaling {
    /// Nominal supply voltage (volts).
    pub vdd_nominal: f64,
    /// Threshold voltage (volts).
    pub vt: f64,
    /// Technology exponent α.
    pub alpha: f64,
}

impl VoltageScaling {
    /// The paper's evaluation technology: 0.13 µm, α = 1.6.
    pub fn cmos_013um() -> Self {
        VoltageScaling {
            vdd_nominal: 1.3,
            vt: 0.3,
            alpha: 1.6,
        }
    }

    /// A 0.35 µm process (α = 2), for the paper's equation discussion.
    pub fn cmos_035um() -> Self {
        VoltageScaling {
            vdd_nominal: 3.3,
            vt: 0.6,
            alpha: 2.0,
        }
    }

    /// Raw delay figure `Vdd / (Vdd - Vt)^α`.
    ///
    /// # Panics
    ///
    /// Panics if `vdd <= vt` (the device does not switch).
    pub fn delay(&self, vdd: f64) -> f64 {
        assert!(vdd > self.vt, "vdd {vdd} must exceed vt {}", self.vt);
        vdd / (vdd - self.vt).powf(self.alpha)
    }

    /// Delay at `vdd` relative to delay at nominal voltage (1.0 at nominal,
    /// growing as the supply is lowered).
    pub fn delay_factor(&self, vdd: f64) -> f64 {
        self.delay(vdd) / self.delay(self.vdd_nominal)
    }

    /// The supply voltage at which logic is exactly `slowdown` times slower
    /// than at nominal (solved by bisection to sub-millivolt precision).
    ///
    /// # Panics
    ///
    /// Panics if `slowdown < 1` (overdrive is out of scope).
    pub fn vdd_for_slowdown(&self, slowdown: f64) -> f64 {
        assert!(slowdown >= 1.0, "slowdown must be >= 1, got {slowdown}");
        if slowdown == 1.0 {
            return self.vdd_nominal;
        }
        // delay_factor is monotonically decreasing in vdd on (vt, vdd_nom]:
        // bisect for delay_factor(v) == slowdown.
        let mut lo = self.vt + 1e-6; // delay -> infinity
        let mut hi = self.vdd_nominal; // delay factor 1
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.delay_factor(mid) > slowdown {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Dynamic-energy multiplier at supply `vdd`: `(V/Vnom)²`.
    pub fn energy_factor(&self, vdd: f64) -> f64 {
        let r = vdd / self.vdd_nominal;
        r * r
    }

    /// Dynamic-energy multiplier for a domain slowed by `slowdown` with the
    /// supply reduced to match ("ideal" scaling — the paper notes real
    /// DC-DC conversion adds overhead on top).
    pub fn energy_factor_for_slowdown(&self, slowdown: f64) -> f64 {
        self.energy_factor(self.vdd_for_slowdown(slowdown))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_identity() {
        let t = VoltageScaling::cmos_013um();
        assert!((t.delay_factor(t.vdd_nominal) - 1.0).abs() < 1e-12);
        assert!((t.vdd_for_slowdown(1.0) - t.vdd_nominal).abs() < 1e-12);
        assert!((t.energy_factor_for_slowdown(1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lower_voltage_is_slower() {
        let t = VoltageScaling::cmos_013um();
        assert!(t.delay_factor(1.0) > 1.0);
        assert!(t.delay_factor(0.8) > t.delay_factor(1.0));
    }

    #[test]
    fn bisection_inverts_the_law() {
        let t = VoltageScaling::cmos_013um();
        for s in [1.1, 1.2, 1.5, 2.0, 3.0] {
            let v = t.vdd_for_slowdown(s);
            assert!(
                (t.delay_factor(v) - s).abs() < 1e-6,
                "slowdown {s}: got {}",
                t.delay_factor(v)
            );
        }
    }

    #[test]
    fn energy_savings_grow_with_slowdown() {
        let t = VoltageScaling::cmos_013um();
        let e11 = t.energy_factor_for_slowdown(1.1);
        let e15 = t.energy_factor_for_slowdown(1.5);
        let e30 = t.energy_factor_for_slowdown(3.0);
        assert!(e11 < 1.0);
        assert!(e15 < e11);
        assert!(e30 < e15);
        // At 3x slowdown the supply approaches Vt; energy drops steeply.
        assert!(e30 < 0.4, "3x slowdown energy factor {e30}");
    }

    #[test]
    fn smaller_alpha_gives_bigger_savings_at_a_given_delay() {
        // The paper: "savings arising out of dynamic voltage scaling for a
        // given delay value are higher for smaller technology generations"
        // (smaller alpha). Compare at equal vdd_nominal/vt so only alpha
        // differs.
        let a16 = VoltageScaling {
            vdd_nominal: 1.3,
            vt: 0.3,
            alpha: 1.6,
        };
        let a20 = VoltageScaling {
            vdd_nominal: 1.3,
            vt: 0.3,
            alpha: 2.0,
        };
        let e16 = a16.energy_factor_for_slowdown(1.5);
        let e20 = a20.energy_factor_for_slowdown(1.5);
        assert!(
            e16 < e20,
            "alpha 1.6 should save more than alpha 2.0: {e16} vs {e20}"
        );
    }

    #[test]
    #[should_panic(expected = "must exceed vt")]
    fn delay_below_threshold_panics() {
        let t = VoltageScaling::cmos_013um();
        let _ = t.delay(0.2);
    }
}
