//! Inter-domain communication channels: synchronous pipeline latches and
//! mixed-clock asynchronous FIFOs.
//!
//! The paper replaces the baseline's pipeline registers with the
//! low-latency mixed-clock FIFO of Chelcea and Nowick. Its timing-relevant
//! behaviour, modelled here:
//!
//! * The **empty** flag is controlled by the producer and *synchronised to
//!   the consumer's clock*: an item enqueued at producer-edge time `t`
//!   becomes visible at the first consumer edge at least one
//!   synchronisation delay after `t`.
//! * The **full** flag is controlled by the consumer and synchronised to the
//!   producer's clock: a slot freed by a dequeue at time `t` becomes usable
//!   by the producer only one synchronisation delay later.
//!
//! With forward/backward synchronisation delays of zero the same structure
//! degenerates to an ordinary 1-cycle pipeline latch (an item written at
//! edge `t` is readable at any strictly later edge), so the synchronous
//! baseline and the GALS processor share all pipeline code and differ only
//! in channel construction — mirroring how the paper's two simulators share
//! the SimpleScalar pipeline model.

use std::collections::VecDeque;

use gals_events::Time;

/// Statistics of one channel.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChannelStats {
    /// Items enqueued.
    pub pushes: u64,
    /// Items dequeued.
    pub pops: u64,
    /// Push attempts rejected because the producer saw the FIFO full.
    pub full_stalls: u64,
    /// Total residency time (pop time minus push time) of dequeued items.
    pub residency: Time,
    /// Peak occupancy observed.
    pub peak_occupancy: usize,
    /// Items flushed by squashes.
    pub flushed: u64,
}

impl ChannelStats {
    /// Mean residency of dequeued items.
    pub fn mean_residency(&self) -> Time {
        if self.pops == 0 {
            Time::ZERO
        } else {
            self.residency / self.pops
        }
    }
}

#[derive(Debug, Clone)]
struct Slot<T> {
    item: T,
    pushed_at: Time,
}

/// A bounded point-to-point channel between two clock domains.
///
/// Use [`Channel::sync_latch`] for the synchronous baseline and
/// [`Channel::mixed_clock_fifo`] for GALS domain crossings.
///
/// # Examples
///
/// ```
/// use gals_clocks::Channel;
/// use gals_events::Time;
///
/// // A FIFO whose consumer needs 1 ns to synchronise the empty flag.
/// let mut ch: Channel<u32> = Channel::mixed_clock_fifo(4, Time::from_ns(1), Time::from_ns(1));
/// ch.try_push(7, Time::from_ns(10)).unwrap();
/// // Not yet visible half a nanosecond later...
/// assert_eq!(ch.try_pop(Time::from_fs(10_500_000)), None);
/// // ...but visible from 11 ns on.
/// assert_eq!(ch.try_pop(Time::from_ns(11)), Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct Channel<T> {
    slots: VecDeque<Slot<T>>,
    /// Slots freed by pops but not yet visible to the producer's full flag.
    frees_pending: VecDeque<Time>,
    capacity: usize,
    /// Forward (empty-flag) synchronisation delay.
    fwd_delay: Time,
    /// Backward (full-flag) synchronisation delay.
    bwd_delay: Time,
    /// True for single-entry rendezvous ports (see [`Channel::rendezvous`]).
    rendezvous: bool,
    stats: ChannelStats,
}

impl<T> Channel<T> {
    /// A synchronous pipeline latch of the given capacity: an item pushed at
    /// edge `t` is poppable at any strictly later edge, and a freed slot is
    /// reusable immediately.
    pub fn sync_latch(capacity: usize) -> Self {
        Self::with_delays(capacity, Time::ZERO, Time::ZERO)
    }

    /// A mixed-clock FIFO with the given capacity and synchronisation
    /// delays. `fwd_delay` is the consumer-side empty-flag synchronisation
    /// time (typically one consumer clock period); `bwd_delay` the
    /// producer-side full-flag synchronisation time (typically one producer
    /// period).
    pub fn mixed_clock_fifo(capacity: usize, fwd_delay: Time, bwd_delay: Time) -> Self {
        Self::with_delays(capacity, fwd_delay, bwd_delay)
    }

    /// A single-entry **rendezvous port**: the unbuffered crossing of a
    /// pausible-clock interface (`PausibleModel::Rendezvous`).
    ///
    /// The port holds at most one item and has no synchronisation delays —
    /// the handshake cost is charged to the participating *clocks*, not to
    /// the channel. Producer-block/consumer-release semantics fall out of
    /// the occupancy rule: a push against an occupied port fails
    /// ([`Channel::try_push`] returns the item, [`Channel::can_push`] is
    /// `false`) until the consumer pops, so the producer must park or
    /// retry; the freeing pop is the release event. A stored item still
    /// obeys the strictly-after-push read rule, exactly like a latch.
    ///
    /// # Examples
    ///
    /// ```
    /// use gals_clocks::Channel;
    /// use gals_events::Time;
    ///
    /// let mut port: Channel<u32> = Channel::rendezvous();
    /// assert!(port.is_rendezvous());
    /// port.try_push(1, Time::from_ns(1)).unwrap();
    /// // Occupied: the producer blocks until the consumer pops.
    /// assert_eq!(port.try_push(2, Time::from_ns(2)), Err(2));
    /// assert_eq!(port.try_pop(Time::from_ns(2)), Some(1));
    /// port.try_push(2, Time::from_ns(2)).unwrap();
    /// ```
    pub fn rendezvous() -> Self {
        Channel {
            rendezvous: true,
            ..Self::with_delays(1, Time::ZERO, Time::ZERO)
        }
    }

    /// True for a single-entry rendezvous port ([`Channel::rendezvous`]).
    pub fn is_rendezvous(&self) -> bool {
        self.rendezvous
    }

    fn with_delays(capacity: usize, fwd_delay: Time, bwd_delay: Time) -> Self {
        assert!(capacity > 0, "channel capacity must be non-zero");
        Channel {
            slots: VecDeque::with_capacity(capacity),
            // At most one pending full-flag synchronisation per slot.
            frees_pending: VecDeque::with_capacity(capacity),
            capacity,
            fwd_delay,
            bwd_delay,
            rendezvous: false,
            stats: ChannelStats::default(),
        }
    }

    /// Capacity in items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently stored (whether or not yet visible).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no items are stored.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Statistics.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Drops full-flag synchronisations that have completed by `now`.
    /// `frees_pending` is sorted (simulation time is globally monotonic and
    /// the backward delay is a per-channel constant), so expiry only ever
    /// pops from the front.
    #[inline]
    fn expire_frees(&mut self, now: Time) {
        while matches!(self.frees_pending.front(), Some(&f) if f <= now) {
            self.frees_pending.pop_front();
        }
    }

    /// True if the producer can push at time `now`. Takes `&mut self` to
    /// expire completed full-flag synchronisations eagerly, making the
    /// producer-visible occupancy check (stored items plus slots whose
    /// full-flag update has not yet synchronised back) O(1) — this runs for
    /// every candidate push on the simulator's hot path.
    pub fn can_push(&mut self, now: Time) -> bool {
        self.expire_frees(now);
        self.slots.len() + self.frees_pending.len() < self.capacity
    }

    /// Earliest time a consumer edge may observe a slot pushed at `at`.
    #[inline]
    fn visible_from(&self, at: Time) -> Time {
        at + self.fwd_delay
    }

    /// Number of items a consumer edge at `now` could pop.
    pub fn visible(&self, now: Time) -> usize {
        self.slots
            .iter()
            .take_while(|s| self.visible_from(s.pushed_at) <= now && s.pushed_at < now)
            .count()
    }

    /// Pushes an item at producer-edge time `now`.
    ///
    /// # Errors
    ///
    /// Returns the item back when the producer-visible occupancy equals the
    /// capacity (the producer stalls, exactly like a full pipeline stage).
    pub fn try_push(&mut self, item: T, now: Time) -> Result<(), T> {
        self.expire_frees(now);
        if self.slots.len() + self.frees_pending.len() >= self.capacity {
            self.stats.full_stalls += 1;
            return Err(item);
        }
        self.slots.push_back(Slot {
            item,
            pushed_at: now,
        });
        self.stats.pushes += 1;
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.slots.len());
        Ok(())
    }

    /// Pops the oldest visible item at consumer-edge time `now`.
    ///
    /// Visibility requires `now >= pushed_at + fwd_delay` **and**
    /// `now > pushed_at` (even a zero-delay latch cannot be read at the very
    /// edge that wrote it).
    pub fn try_pop(&mut self, now: Time) -> Option<T> {
        self.try_pop_timed(now).map(|(item, _)| item)
    }

    /// Like [`Channel::try_pop`], but also returns how long the item sat in
    /// the channel (pop time minus push time). The pipeline simulator uses
    /// this to attribute slip to FIFO residency (the paper's Figure 7).
    pub fn try_pop_timed(&mut self, now: Time) -> Option<(T, Time)> {
        let front = self.slots.front()?;
        if self.visible_from(front.pushed_at) > now || front.pushed_at >= now {
            return None;
        }
        let slot = self.slots.pop_front().expect("front exists");
        self.stats.pops += 1;
        let residency = now - slot.pushed_at;
        self.stats.residency += residency;
        self.frees_pending.push_back(now + self.bwd_delay);
        Some((slot.item, residency))
    }

    /// The earliest edge of a *periodic consumer* (first edge at `phase`,
    /// then every `period`) at which the current front item becomes
    /// poppable — i.e. the first grid edge satisfying both visibility
    /// constraints of [`Channel::try_pop`] (`now >= pushed_at + fwd_delay`
    /// and `now > pushed_at`). Returns `None` for an empty channel.
    ///
    /// This is what lets a scheduler *elide* the consumer's idle edges:
    /// the pop an elided edge would have performed can be replayed later at
    /// exactly this timestamp (see the idle-tick elision notes in
    /// `gals_events`).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn front_pop_time(&self, phase: Time, period: Time) -> Option<Time> {
        assert!(period > Time::ZERO, "consumer grid period must be non-zero");
        let bound = self.front_pop_bound()?;
        if bound <= phase {
            return Some(phase);
        }
        let delta = bound.as_fs() - phase.as_fs();
        let k = delta.div_ceil(period.as_fs());
        Some(phase + period * k)
    }

    /// Earliest instant the current front item could legally pop on *any*
    /// consumer (visible, and strictly after the pushing edge) — a cheap
    /// lower bound on [`Channel::front_pop_time`] that needs no division,
    /// for callers that first test whether a pop could possibly be due.
    #[inline]
    pub fn front_pop_bound(&self) -> Option<Time> {
        let front = self.slots.front()?;
        Some(
            self.visible_from(front.pushed_at)
                .max(front.pushed_at + Time::from_fs(1)),
        )
    }

    /// Peeks the oldest visible item without removing it.
    pub fn peek(&self, now: Time) -> Option<&T> {
        let front = self.slots.front()?;
        if self.visible_from(front.pushed_at) > now || front.pushed_at >= now {
            return None;
        }
        Some(&front.item)
    }

    /// Removes items for which `keep` returns `false` (squash support);
    /// freed slots synchronise back to the producer after the backward
    /// delay, measured from `now`. Returns the number removed.
    pub fn flush_where(&mut self, now: Time, mut keep: impl FnMut(&T) -> bool) -> usize {
        let before = self.slots.len();
        // Retain in place (order-preserving); no replacement deque is
        // allocated per squash.
        let frees = &mut self.frees_pending;
        let freed_at = now + self.bwd_delay;
        self.slots.retain(|slot| {
            if keep(&slot.item) {
                true
            } else {
                frees.push_back(freed_at);
                false
            }
        });
        let removed = before - self.slots.len();
        self.stats.flushed += removed as u64;
        removed
    }

    /// Removes everything (full squash of the channel).
    pub fn clear(&mut self, now: Time) -> usize {
        self.flush_where(now, |_| false)
    }

    /// Iterates over stored items oldest-first (diagnostics; ignores
    /// visibility).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().map(|s| &s.item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NS: u64 = 1_000_000;

    #[test]
    fn sync_latch_is_one_cycle() {
        let mut ch: Channel<u32> = Channel::sync_latch(4);
        ch.try_push(1, Time::from_fs(NS)).unwrap();
        // Same edge: not readable.
        assert_eq!(ch.try_pop(Time::from_fs(NS)), None);
        // Next edge: readable.
        assert_eq!(ch.try_pop(Time::from_fs(2 * NS)), Some(1));
    }

    #[test]
    fn fifo_forward_delay_gates_visibility() {
        let mut ch: Channel<u32> = Channel::mixed_clock_fifo(4, Time::from_fs(NS), Time::ZERO);
        ch.try_push(9, Time::from_fs(10 * NS)).unwrap();
        assert_eq!(ch.try_pop(Time::from_fs(10 * NS + NS / 2)), None);
        assert_eq!(ch.peek(Time::from_fs(11 * NS)), Some(&9));
        assert_eq!(ch.try_pop(Time::from_fs(11 * NS)), Some(9));
    }

    #[test]
    fn fifo_orders_items() {
        let mut ch: Channel<u32> = Channel::mixed_clock_fifo(4, Time::ZERO, Time::ZERO);
        ch.try_push(1, Time::from_fs(NS)).unwrap();
        ch.try_push(2, Time::from_fs(NS)).unwrap();
        assert_eq!(ch.try_pop(Time::from_fs(2 * NS)), Some(1));
        assert_eq!(ch.try_pop(Time::from_fs(2 * NS)), Some(2));
        assert_eq!(ch.try_pop(Time::from_fs(2 * NS)), None);
    }

    #[test]
    fn capacity_blocks_and_counts_stalls() {
        let mut ch: Channel<u32> = Channel::sync_latch(2);
        let t = Time::from_fs(NS);
        ch.try_push(1, t).unwrap();
        ch.try_push(2, t).unwrap();
        assert_eq!(ch.try_push(3, t), Err(3));
        assert_eq!(ch.stats().full_stalls, 1);
    }

    #[test]
    fn backward_delay_keeps_slot_occupied() {
        // Capacity 1, full flag takes 1 ns to synchronise back.
        let mut ch: Channel<u32> = Channel::mixed_clock_fifo(1, Time::ZERO, Time::from_fs(NS));
        ch.try_push(1, Time::from_fs(NS)).unwrap();
        assert_eq!(ch.try_pop(Time::from_fs(2 * NS)), Some(1));
        // The slot frees at 3 ns from the producer's perspective.
        assert!(!ch.can_push(Time::from_fs(2 * NS)));
        assert_eq!(ch.try_push(2, Time::from_fs(2 * NS)), Err(2));
        assert!(ch.can_push(Time::from_fs(3 * NS)));
        ch.try_push(2, Time::from_fs(3 * NS)).unwrap();
    }

    #[test]
    fn rendezvous_port_blocks_until_the_consuming_pop() {
        let mut port: Channel<u32> = Channel::rendezvous();
        assert!(port.is_rendezvous());
        assert_eq!(port.capacity(), 1);
        port.try_push(1, Time::from_fs(NS)).unwrap();
        // Same-edge reads are still forbidden (latch rule)...
        assert_eq!(port.try_pop(Time::from_fs(NS)), None);
        // ...and the occupied port rejects the producer until the pop.
        assert!(!port.can_push(Time::from_fs(2 * NS)));
        assert_eq!(port.try_push(2, Time::from_fs(2 * NS)), Err(2));
        assert_eq!(port.stats().full_stalls, 1);
        assert_eq!(port.try_pop(Time::from_fs(2 * NS)), Some(1));
        // The pop releases the port immediately (no backward delay).
        assert!(port.can_push(Time::from_fs(2 * NS)));
        port.try_push(2, Time::from_fs(2 * NS)).unwrap();
        // Latches and FIFOs are not rendezvous ports.
        assert!(!Channel::<u32>::sync_latch(1).is_rendezvous());
        assert!(!Channel::<u32>::mixed_clock_fifo(1, Time::ZERO, Time::ZERO).is_rendezvous());
    }

    #[test]
    fn residency_is_tracked() {
        let mut ch: Channel<u32> = Channel::sync_latch(4);
        ch.try_push(1, Time::from_fs(NS)).unwrap();
        ch.try_push(2, Time::from_fs(NS)).unwrap();
        let _ = ch.try_pop(Time::from_fs(3 * NS));
        let _ = ch.try_pop(Time::from_fs(4 * NS));
        assert_eq!(ch.stats().residency, Time::from_fs(2 * NS + 3 * NS));
        assert_eq!(ch.stats().mean_residency(), Time::from_fs(5 * NS / 2));
    }

    #[test]
    fn flush_where_drops_and_frees() {
        let mut ch: Channel<u32> = Channel::sync_latch(4);
        let t = Time::from_fs(NS);
        for i in 0..4 {
            ch.try_push(i, t).unwrap();
        }
        let removed = ch.flush_where(Time::from_fs(2 * NS), |&x| x % 2 == 0);
        assert_eq!(removed, 2);
        assert_eq!(ch.len(), 2);
        assert_eq!(ch.stats().flushed, 2);
        assert!(ch.can_push(Time::from_fs(2 * NS)));
        let items: Vec<u32> = ch.iter().copied().collect();
        assert_eq!(items, vec![0, 2]);
    }

    #[test]
    fn clear_empties_channel() {
        let mut ch: Channel<u32> = Channel::sync_latch(4);
        ch.try_push(1, Time::from_fs(NS)).unwrap();
        ch.try_push(2, Time::from_fs(NS)).unwrap();
        assert_eq!(ch.clear(Time::from_fs(NS)), 2);
        assert!(ch.is_empty());
    }

    #[test]
    fn front_pop_time_matches_try_pop_visibility() {
        // FIFO with a 1 ns forward delay; consumer edges at 0.3 ns + n ns.
        let phase = Time::from_ps(300);
        let period = Time::from_fs(NS);
        let mut ch: Channel<u32> = Channel::mixed_clock_fifo(4, Time::from_fs(NS), Time::ZERO);
        assert_eq!(ch.front_pop_time(phase, period), None);
        ch.try_push(9, Time::from_fs(10 * NS)).unwrap();
        // Visible from 11 ns; first consumer edge at or after that is 11.3.
        let e = ch.front_pop_time(phase, period).unwrap();
        assert_eq!(e, Time::from_fs(11 * NS + 300_000));
        // The computed edge is exactly the first edge at which try_pop works.
        assert_eq!(ch.clone().try_pop(e - period), None);
        assert_eq!(ch.try_pop(e), Some(9));

        // Zero-delay latch: an item pushed exactly on a grid edge must wait
        // for the *next* edge (strictly-after-push rule).
        let mut latch: Channel<u32> = Channel::sync_latch(4);
        latch.try_push(1, phase).unwrap();
        assert_eq!(
            latch.front_pop_time(phase, period),
            Some(phase + period),
            "same-edge reads are forbidden even with no sync delay"
        );
    }

    #[test]
    fn visible_counts_ready_items() {
        let mut ch: Channel<u32> = Channel::mixed_clock_fifo(4, Time::from_fs(NS), Time::ZERO);
        ch.try_push(1, Time::from_fs(NS)).unwrap();
        ch.try_push(2, Time::from_fs(2 * NS)).unwrap();
        // First item visible from 2 ns (push + fwd delay), second from 3 ns.
        assert_eq!(ch.visible(Time::from_fs(NS + NS / 2)), 0);
        assert_eq!(ch.visible(Time::from_fs(2 * NS)), 1);
        assert_eq!(ch.visible(Time::from_fs(2 * NS + NS / 2)), 1);
        assert_eq!(ch.visible(Time::from_fs(3 * NS)), 2);
    }

    #[test]
    fn random_phase_crossing_latency_averages_1_5_periods() {
        // Statistical check of the GALS crossing cost: with equal producer
        // and consumer frequencies and a uniformly random consumer phase,
        // the mean FIFO crossing latency approaches 1.5 consumer periods
        // (against 1.0 for the synchronous latch).
        let period = NS;
        let mut total = 0u64;
        let trials = 1_000;
        for k in 0..trials {
            let phase = gals_isa::rng::hash3(7, 1, k) % period;
            let mut ch: Channel<u32> =
                Channel::mixed_clock_fifo(4, Time::from_fs(period), Time::ZERO);
            let push_t = 10 * period;
            ch.try_push(1, Time::from_fs(push_t)).unwrap();
            // Consumer edges at phase + n*period; find the first that pops.
            let mut edge = phase + ((push_t - phase) / period) * period;
            loop {
                if edge > push_t && ch.try_pop(Time::from_fs(edge)).is_some() {
                    break;
                }
                edge += period;
            }
            total += edge - push_t;
        }
        let mean = total as f64 / trials as f64 / period as f64;
        assert!(
            (1.4..1.6).contains(&mean),
            "mean crossing latency {mean} periods"
        );
    }
}
