//! # gals — Power and Performance Evaluation of GALS Processors
//!
//! A from-scratch Rust reproduction of *"Power and Performance Evaluation
//! of Globally Asynchronous Locally Synchronous Processors"* (Iyer &
//! Marculescu, ISCA 2002): a cycle-level, event-driven simulation of a
//! 4-wide out-of-order superscalar processor in three clocking styles —
//! fully synchronous; GALS with five locally synchronous clock domains
//! communicating through mixed-clock FIFOs; and the section-3.2 pausible
//! (stretchable-clock) ablation machine, with both latched and rendezvous
//! (unbuffered) transfer models — with Wattch-style power modelling and
//! per-domain dynamic voltage/frequency scaling.
//!
//! New here? Start with the repository `README.md` and
//! `docs/ARCHITECTURE.md` (the paper-to-code map).
//!
//! This crate is a facade re-exporting the workspace's public API:
//!
//! * [`events`] — the discrete-event simulation engine (paper §4.2);
//! * [`isa`] — the timing-semantic instruction set and program CFGs;
//! * [`workload`] — synthetic SPEC95/MediaBench benchmark stand-ins;
//! * [`uarch`] — caches, branch prediction, rename, issue queues, ROB;
//! * [`clocks`] — clock domains, mixed-clock FIFOs, voltage scaling;
//! * [`power`] — per-block energy accounting and clock-grid models;
//! * [`core`] — the processor models and the `simulate` entry point;
//! * [`sweep`] — the parallel scenario-sweep harness (cartesian experiment
//!   matrices, a deterministic worker pool, schema-versioned reports).
//!
//! ## Quickstart
//!
//! ```
//! use gals::core::{simulate, ProcessorConfig, SimLimits};
//! use gals::workload::{generate, Benchmark};
//!
//! let program = generate(Benchmark::Gcc, 42);
//! let limits = SimLimits::insts(20_000);
//!
//! let base = simulate(&program, ProcessorConfig::synchronous_1ghz(), limits).expect("run");
//! let gals = simulate(&program, ProcessorConfig::gals_equal_1ghz(7), limits).expect("run");
//!
//! // The paper's headline: GALS is slower at equal clock rates...
//! assert!(gals.exec_time > base.exec_time);
//! // ...and eliminating the global clock grid alone does not guarantee
//! // lower total energy.
//! println!("energy ratio: {:.3}", gals.relative_energy(&base));
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/` for
//! the binaries regenerating every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gals_clocks as clocks;
pub use gals_core as core;
pub use gals_events as events;
pub use gals_isa as isa;
pub use gals_power as power;
pub use gals_sweep as sweep;
pub use gals_uarch as uarch;
pub use gals_workload as workload;
