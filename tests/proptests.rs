//! Property-based tests across the whole stack: arbitrary workload
//! profiles and clock configurations must simulate without panicking and
//! uphold the architectural invariants.

use gals::clocks::{ClockSpec, Domain, PausibleClockModel, PausibleModel};
use gals::core::{simulate, simulate_with_engine, Clocking, DvfsPlan, ProcessorConfig, SimLimits};
use gals::events::Time;
use gals::workload::{generate_profile, WorkloadProfile};
use proptest::prelude::*;

/// A constrained-but-wide space of valid workload profiles.
fn arb_profile() -> impl Strategy<Value = WorkloadProfile> {
    (
        0.02f64..0.25, // frac_branch
        0.0f64..0.3,   // frac_load
        0.0f64..0.15,  // frac_store
        0.0f64..0.4,   // frac_fp
        0.5f64..0.98,  // branch_bias
        2u32..64,      // loop_trip
        16u64..4096,   // footprint in KB
        0.0f64..1.0,   // stride_frac
        0.0f64..0.5,   // random_frac
        1u32..14,      // dep_distance
        1u32..8,       // functions
    )
        .prop_filter_map("instruction mix must sum below 1", |t| {
            let (br, ld, st, fp, bias, trip, fp_kb, stride, random, dep, funcs) = t;
            if br + ld + st + fp > 0.95 {
                return None;
            }
            Some(WorkloadProfile {
                name: "prop",
                frac_branch: br,
                frac_load: ld,
                frac_store: st,
                frac_fp: fp,
                frac_int_mul: 0.0,
                frac_int_div: 0.0,
                branch_bias: bias,
                loop_trip: trip,
                footprint: fp_kb * 1024,
                stride_frac: stride,
                random_frac: random,
                dep_distance: dep,
                functions: funcs,
            })
        })
}

fn arb_domain_clocks() -> impl Strategy<Value = [ClockSpec; 5]> {
    (
        prop::array::uniform5(800_000u64..2_000_000),
        prop::array::uniform5(0u64..1_000_000),
    )
        .prop_map(|(periods, phases)| {
            std::array::from_fn(|i| ClockSpec {
                period: Time::from_fs(periods[i]),
                phase: Time::from_fs(phases[i] % periods[i]),
            })
        })
}

/// A random pausible clocking: arbitrary clocks, handshake duration and
/// transfer-capacity model (latched or rendezvous).
fn arb_pausible() -> impl Strategy<Value = Clocking> {
    (arb_domain_clocks(), 0u64..500_000, any::<bool>()).prop_map(
        |(clocks, handshake, rendezvous)| Clocking::Pausible {
            clocks,
            model: PausibleClockModel::new(Time::from_fs(handshake)),
            transfer: if rendezvous {
                PausibleModel::Rendezvous
            } else {
                PausibleModel::Latched
            },
        },
    )
}

fn arb_clocking() -> impl Strategy<Value = Clocking> {
    prop_oneof![
        (800_000u64..2_000_000)
            .prop_map(|p| Clocking::Synchronous(ClockSpec::new(Time::from_fs(p)))),
        arb_domain_clocks().prop_map(Clocking::Gals),
        arb_pausible(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid profile on any clocking commits exactly the requested
    /// budget, with sane statistics.
    #[test]
    fn any_profile_any_clocking_simulates(
        profile in arb_profile(),
        clocking in arb_clocking(),
        seed in 0u64..1_000,
    ) {
        let program = generate_profile(&profile, seed);
        let mut cfg = ProcessorConfig::synchronous_1ghz();
        cfg.clocking = clocking;
        let limits = SimLimits::insts(3_000).with_watchdog_cycles(300_000);
        let r = simulate(&program, cfg, limits).expect("simulation failed");
        prop_assert_eq!(r.committed, 3_000);
        prop_assert!(r.fetched >= r.committed);
        prop_assert!(r.issued >= r.committed);
        prop_assert!(r.exec_time > Time::ZERO);
        prop_assert!(r.total_energy() > 0.0);
        prop_assert!(r.mean_slip() > Time::ZERO);
        prop_assert!((0.0..1.0).contains(&r.misspeculation_rate()));
        // Slip must be at least the minimum pipeline transit (several ns at
        // ~1 GHz clocks).
        prop_assert!(r.mean_slip() >= Time::from_ns(4));
    }

    /// Per-domain DVFS never breaks correctness, and a slowed machine is
    /// never faster than the same machine unscaled.
    #[test]
    fn dvfs_slowdowns_are_monotonic(
        profile in arb_profile(),
        which in 0usize..5,
        factor in 1.0f64..3.0,
    ) {
        let program = generate_profile(&profile, 7);
        let limits = SimLimits::insts(2_000).with_watchdog_cycles(300_000);
        let nominal = simulate(&program, ProcessorConfig::gals_equal_1ghz(3), limits).expect("simulation failed");
        let plan = DvfsPlan::nominal().with_slowdown(Domain::ALL[which], factor);
        let cfg = ProcessorConfig::gals_equal_1ghz(3).with_dvfs(plan);
        let scaled = simulate(&program, cfg, limits).expect("simulation failed");
        prop_assert_eq!(scaled.committed, nominal.committed);
        // Strict monotonicity does not hold in a GALS machine: slowing
        // the fetch domain slightly can *help* by throttling wrong-path
        // fetch, and phase re-alignment adds sub-percent jitter (the paper
        // reports ~0.5% phase sensitivity). The property is: slowing one
        // domain never makes the machine significantly faster.
        prop_assert!(
            scaled.exec_time.as_fs() as f64 >= nominal.exec_time.as_fs() as f64 * 0.96,
            "slowing a domain cannot make the machine significantly faster ({} vs {})",
            scaled.exec_time, nominal.exec_time
        );
    }

    /// The two-scheduler contract under random *pausible* clockings —
    /// both transfer models. Random clocks, phases and handshake
    /// durations generate arbitrary clock-stretch streams, and the
    /// rendezvous arm additionally generates arbitrary producer-block /
    /// consumer-release (park-and-retry) streams on every single-entry
    /// port; the static `ClockSet` fast path (with idle-tick elision) and
    /// the general `Engine` oracle must still agree on every report field,
    /// bit for bit.
    #[test]
    fn schedulers_bit_identical_under_random_stretch_and_block_streams(
        profile in arb_profile(),
        clocking in arb_pausible(),
        seed in 0u64..1_000,
    ) {
        let program = generate_profile(&profile, seed);
        let mut cfg = ProcessorConfig::synchronous_1ghz();
        cfg.clocking = clocking;
        let limits = SimLimits::insts(1_200).with_watchdog_cycles(300_000);
        let fast = simulate(&program, cfg.clone(), limits).expect("simulation failed");
        let oracle = simulate_with_engine(&program, cfg, limits).expect("simulation failed");
        prop_assert_eq!(format!("{fast:?}"), format!("{oracle:?}"));
    }

    /// The same (profile, seed, config) is bit-reproducible.
    #[test]
    fn simulation_reproducibility(profile in arb_profile(), seed in 0u64..100) {
        let program = generate_profile(&profile, seed);
        let limits = SimLimits::insts(1_500).with_watchdog_cycles(300_000);
        let a = simulate(&program, ProcessorConfig::gals_equal_1ghz(11), limits).expect("simulation failed");
        let b = simulate(&program, ProcessorConfig::gals_equal_1ghz(11), limits).expect("simulation failed");
        prop_assert_eq!(a.exec_time, b.exec_time);
        prop_assert_eq!(a.fetched, b.fetched);
        prop_assert_eq!(a.channel_ops, b.channel_ops);
    }
}
