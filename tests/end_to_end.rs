//! Cross-crate integration tests: the full simulator driven through the
//! facade crate, checking the paper's qualitative claims end to end.

use gals::clocks::Domain;
use gals::core::{simulate, simulate_with_engine, Clocking, DvfsPlan, ProcessorConfig, SimLimits};
use gals::events::Time;
use gals::workload::{generate, generate_workload, micro, Benchmark, ProgramKernel, Workload};

const LIMITS: SimLimits = SimLimits::insts(20_000);

#[test]
fn base_commits_exactly_the_requested_budget() {
    let program = generate(Benchmark::Perl, 1);
    let r =
        simulate(&program, ProcessorConfig::synchronous_1ghz(), LIMITS).expect("simulation failed");
    assert_eq!(r.committed, LIMITS.max_insts);
    assert!(r.exec_time > Time::ZERO);
    assert!(r.fetched >= r.committed);
}

#[test]
fn clockset_and_engine_schedulers_produce_identical_reports() {
    // The production `simulate` drives the pipeline through the static
    // ClockSet scheduler; `simulate_with_engine` is the original
    // general-engine oracle. Every field of the report — timing, per-domain
    // cycles, caches, energy — must match bit for bit, on all three clocking
    // styles (pausible mode additionally exercises the clock-stretch path of
    // both schedulers) and across distinct workloads.
    let limits = SimLimits::insts(8_000);
    for bench in [Benchmark::Gcc, Benchmark::Fpppp] {
        let program = generate(bench, 42);
        for cfg in [
            ProcessorConfig::synchronous_1ghz(),
            ProcessorConfig::gals_equal_1ghz(7),
            ProcessorConfig::pausible_equal_1ghz(7),
            ProcessorConfig::pausible_rendezvous_1ghz(7),
        ] {
            let fast = simulate(&program, cfg.clone(), limits).expect("simulation failed");
            let oracle =
                simulate_with_engine(&program, cfg.clone(), limits).expect("simulation failed");
            assert_eq!(
                format!("{fast:?}"),
                format!("{oracle:?}"),
                "scheduler divergence on {} / {:?}",
                bench.name(),
                cfg.clocking
            );
        }
    }
}

#[test]
fn program_kernels_are_bit_identical_across_schedulers_and_clockings() {
    // The program-driven workloads (checked-in `.gasm` kernels executed to
    // a trace) must flow through the exact same stream interface as the
    // synthetic programs: for every kernel, the ClockSet fast path and the
    // general-engine oracle must agree bit for bit on every report field,
    // under all four clocking styles.
    let limits = SimLimits::insts(6_000);
    for kernel in ProgramKernel::ALL {
        let program = generate_workload(Workload::Kernel(kernel), 42);
        for cfg in [
            ProcessorConfig::synchronous_1ghz(),
            ProcessorConfig::gals_equal_1ghz(7),
            ProcessorConfig::pausible_equal_1ghz(7),
            ProcessorConfig::pausible_rendezvous_1ghz(7),
        ] {
            let fast = simulate(&program, cfg.clone(), limits).expect("simulation failed");
            let oracle =
                simulate_with_engine(&program, cfg.clone(), limits).expect("simulation failed");
            assert_eq!(
                format!("{fast:?}"),
                format!("{oracle:?}"),
                "scheduler divergence on {kernel} / {:?}",
                cfg.clocking
            );
        }
    }
}

#[test]
fn program_kernels_reproduce_the_papers_clocking_ordering() {
    // The paper's qualitative ordering (sync faster than FIFO-GALS faster
    // than pausible at equal nominal clocks) must hold on the executed
    // kernels too, not just the synthetic profiles that were tuned for it.
    for kernel in ProgramKernel::ALL {
        let program = generate_workload(Workload::Kernel(kernel), 2);
        let limits = SimLimits::insts(6_000);
        let base = simulate(&program, ProcessorConfig::synchronous_1ghz(), limits)
            .expect("simulation failed");
        let gals = simulate(&program, ProcessorConfig::gals_equal_1ghz(1), limits)
            .expect("simulation failed");
        let paus = simulate(&program, ProcessorConfig::pausible_equal_1ghz(1), limits)
            .expect("simulation failed");
        assert_eq!(base.committed, gals.committed, "{kernel}: unequal budgets");
        assert!(
            base.exec_time < gals.exec_time,
            "{kernel}: sync must outrun GALS"
        );
        assert!(
            gals.insts_per_ns() > paus.insts_per_ns(),
            "{kernel}: FIFO-GALS must outrun pausible"
        );
    }
}

#[test]
fn finite_program_drains_completely() {
    let program = micro::alu_loop(500, 4);
    let total = 500 * 5 + 1;
    let r = simulate(
        &program,
        ProcessorConfig::synchronous_1ghz(),
        SimLimits::insts(1_000_000),
    )
    .expect("simulation failed");
    assert_eq!(
        r.committed, total,
        "every architectural instruction commits"
    );
}

#[test]
fn simulation_is_deterministic() {
    let program = generate(Benchmark::Go, 3);
    let a =
        simulate(&program, ProcessorConfig::gals_equal_1ghz(5), LIMITS).expect("simulation failed");
    let b =
        simulate(&program, ProcessorConfig::gals_equal_1ghz(5), LIMITS).expect("simulation failed");
    assert_eq!(a.exec_time, b.exec_time);
    assert_eq!(a.fetched, b.fetched);
    assert_eq!(a.wrong_path_fetched, b.wrong_path_fetched);
    assert_eq!(a.slip_total, b.slip_total);
    assert!((a.total_energy() - b.total_energy()).abs() < 1e-9);
}

#[test]
fn gals_is_slower_at_equal_clocks_across_the_suite() {
    for bench in [Benchmark::Gcc, Benchmark::Fpppp, Benchmark::Adpcm] {
        let program = generate(bench, 2);
        let base = simulate(&program, ProcessorConfig::synchronous_1ghz(), LIMITS)
            .expect("simulation failed");
        let gals = simulate(&program, ProcessorConfig::gals_equal_1ghz(1), LIMITS)
            .expect("simulation failed");
        assert!(
            gals.exec_time > base.exec_time,
            "{bench}: GALS must be slower (base {}, gals {})",
            base.exec_time,
            gals.exec_time
        );
    }
}

#[test]
fn pausible_clocking_is_slower_than_fifo_gals_on_every_benchmark() {
    // The paper's section-3.2 claim, *measured* rather than modelled: with
    // transactions nearly every cycle, pausible clocks stretch nearly every
    // cycle, so at equal nominal frequency the pausible machine's
    // throughput falls below the mixed-clock-FIFO GALS design on all four
    // benchmarks of the ablation.
    for bench in [
        Benchmark::Gcc,
        Benchmark::Fpppp,
        Benchmark::Ijpeg,
        Benchmark::Compress,
    ] {
        let program = generate(bench, 2);
        let gals = simulate(&program, ProcessorConfig::gals_equal_1ghz(1), LIMITS)
            .expect("simulation failed");
        let paus = simulate(&program, ProcessorConfig::pausible_equal_1ghz(1), LIMITS)
            .expect("simulation failed");
        assert_eq!(gals.committed, paus.committed, "{bench}: unequal budgets");
        assert!(
            paus.insts_per_ns() < gals.insts_per_ns(),
            "{bench}: pausible must be slower than FIFO-GALS \
             ({} vs {} insts/ns)",
            paus.insts_per_ns(),
            gals.insts_per_ns()
        );
    }
}

#[test]
fn rendezvous_pausible_is_slower_than_latched_on_every_benchmark() {
    // Section 3.2, second half: the latched pausible machine charges only
    // the *timing* cost of handshakes; with rendezvous (unbuffered)
    // transfers every crossing is a single-entry port, producers block
    // until the consumer pops, and the *capacity* cost lands too — so the
    // rendezvous machine must measure slower than the latched one on all
    // four ablation benchmarks, at identical committed work.
    for bench in [
        Benchmark::Gcc,
        Benchmark::Fpppp,
        Benchmark::Ijpeg,
        Benchmark::Compress,
    ] {
        let program = generate(bench, 2);
        let latched = simulate(&program, ProcessorConfig::pausible_equal_1ghz(1), LIMITS)
            .expect("simulation failed");
        let rdv = simulate(
            &program,
            ProcessorConfig::pausible_rendezvous_1ghz(1),
            LIMITS,
        )
        .expect("simulation failed");
        assert_eq!(latched.committed, rdv.committed, "{bench}: unequal budgets");
        assert!(
            rdv.insts_per_ns() < latched.insts_per_ns(),
            "{bench}: rendezvous must be slower than latched pausible \
             ({} vs {} insts/ns)",
            rdv.insts_per_ns(),
            latched.insts_per_ns()
        );
        // The capacity cost is visible as producer cycles parked on
        // occupied ports — and only the rendezvous machine pays it.
        assert!(
            rdv.total_rendezvous_blocked() > 0,
            "{bench}: rendezvous ports must block producers"
        );
        assert_eq!(latched.total_rendezvous_blocked(), 0);
    }
}

#[test]
fn rendezvous_reports_are_bit_identical_across_schedulers_on_all_benchmarks() {
    // The acceptance bar for the rendezvous mode: ClockSet (with idle-tick
    // elision and park-and-retry producers) and the never-eliding Engine
    // oracle agree on every report field, on all four ablation benchmarks.
    let limits = SimLimits::insts(6_000);
    for bench in [
        Benchmark::Gcc,
        Benchmark::Fpppp,
        Benchmark::Ijpeg,
        Benchmark::Compress,
    ] {
        let program = generate(bench, 42);
        let cfg = ProcessorConfig::pausible_rendezvous_1ghz(7);
        let fast = simulate(&program, cfg.clone(), limits).expect("simulation failed");
        let oracle = simulate_with_engine(&program, cfg, limits).expect("simulation failed");
        assert_eq!(
            format!("{fast:?}"),
            format!("{oracle:?}"),
            "scheduler divergence in rendezvous mode on {}",
            bench.name()
        );
    }
}

#[test]
fn pausible_stretches_lower_the_effective_frequencies() {
    use gals::power::MacroBlock;
    let program = generate(Benchmark::Gcc, 2);
    let paus = simulate(&program, ProcessorConfig::pausible_equal_1ghz(1), LIMITS)
        .expect("simulation failed");
    assert!(paus.total_stretches() > 0, "transfers must stretch clocks");
    for d in Domain::ALL {
        let i = d.index();
        assert!(paus.stretches[i] > 0, "domain {d} never stretched");
        assert!(paus.stretch_time[i] > Time::ZERO);
        // Every domain communicates nearly every cycle, so its measured
        // effective frequency must fall below the 1 GHz nominal.
        let ghz = paus.effective_ghz(d);
        assert!(
            ghz < 0.95,
            "domain {d} effective frequency {ghz} GHz should be well below nominal"
        );
    }
    // No FIFOs and no global grid in the pausible machine.
    assert_eq!(paus.energy.block(MacroBlock::Fifos), 0.0);
    assert_eq!(paus.energy.global_clock, 0.0);
    // The other two machines never stretch.
    let gals =
        simulate(&program, ProcessorConfig::gals_equal_1ghz(1), LIMITS).expect("simulation failed");
    let base =
        simulate(&program, ProcessorConfig::synchronous_1ghz(), LIMITS).expect("simulation failed");
    assert_eq!(gals.total_stretches(), 0);
    assert_eq!(base.total_stretches(), 0);
}

#[test]
fn wakeup_filter_cuts_channel_ops_without_changing_the_architecture() {
    // The producer-side cross-cluster dependence filter only suppresses
    // wakeup broadcasts to clusters that never renamed a consumer; the
    // committed work is identical and the timing essentially so (a consumer
    // renamed after its producer's writeback becomes ready at rename instead
    // of at wakeup arrival, which can only help).
    for bench in [Benchmark::Gcc, Benchmark::Fpppp] {
        let program = generate(bench, 2);
        let plain = simulate(&program, ProcessorConfig::gals_equal_1ghz(1), LIMITS)
            .expect("simulation failed");
        let cfg = ProcessorConfig::gals_equal_1ghz(1).with_wakeup_filter(true);
        let filtered = simulate(&program, cfg, LIMITS).expect("simulation failed");
        assert_eq!(plain.committed, filtered.committed);
        assert!(
            filtered.channel_ops < plain.channel_ops,
            "{bench}: filter must drop consumerless remote wakeups ({} vs {})",
            filtered.channel_ops,
            plain.channel_ops
        );
        let ratio = filtered.exec_time.as_fs() as f64 / plain.exec_time.as_fs() as f64;
        assert!(
            ratio < 1.02,
            "{bench}: the filter must not slow the machine down ({ratio})"
        );
    }
}

#[test]
fn wakeup_filter_is_deadlock_free_on_dependence_heavy_workloads() {
    // The filter's risk is a consumer waiting for a wakeup that was never
    // sent; the deadlock watchdog in SimLimits turns that into a
    // SimError::Deadlock.
    // Cross-cluster chains maximise remote dependences, coin-flip branches
    // maximise squash/rename churn of the filter state.
    let cfg = || ProcessorConfig::gals_equal_1ghz(3).with_wakeup_filter(true);
    let chains = micro::cross_cluster(2_000);
    let r = simulate(&chains, cfg(), SimLimits::insts(10_000)).expect("simulation failed");
    assert_eq!(r.committed, 10_000);
    let branches = micro::random_branches(3_000);
    let r = simulate(&branches, cfg(), SimLimits::insts(8_000)).expect("simulation failed");
    assert_eq!(r.committed, 8_000);
    // Pausible machines share the filter path (stretch charges drop too).
    let paus = ProcessorConfig::pausible_equal_1ghz(3).with_wakeup_filter(true);
    let r = simulate(&chains, paus, SimLimits::insts(10_000)).expect("simulation failed");
    assert_eq!(r.committed, 10_000);
}

#[test]
fn wakeup_coalescing_softens_the_pausible_penalty() {
    for bench in [Benchmark::Gcc, Benchmark::Compress] {
        let program = generate(bench, 2);
        let plain = simulate(&program, ProcessorConfig::pausible_equal_1ghz(1), LIMITS)
            .expect("simulation failed");
        let cfg = ProcessorConfig::pausible_equal_1ghz(1).with_wakeup_coalescing(true);
        let coalesced = simulate(&program, cfg, LIMITS).expect("simulation failed");
        assert_eq!(plain.committed, coalesced.committed);
        assert!(
            coalesced.total_stretches() < plain.total_stretches(),
            "{bench}: coalescing must merge same-cycle wakeup handshakes \
             ({} vs {})",
            coalesced.total_stretches(),
            plain.total_stretches()
        );
        assert!(
            coalesced.exec_time < plain.exec_time,
            "{bench}: fewer handshakes must run faster ({} vs {})",
            coalesced.exec_time,
            plain.exec_time
        );
    }
    // Outside pausible mode the flag is inert: no handshakes to merge.
    let program = generate(Benchmark::Gcc, 2);
    let plain =
        simulate(&program, ProcessorConfig::gals_equal_1ghz(1), LIMITS).expect("simulation failed");
    let cfg = ProcessorConfig::gals_equal_1ghz(1).with_wakeup_coalescing(true);
    let flagged = simulate(&program, cfg, LIMITS).expect("simulation failed");
    assert_eq!(format!("{plain:?}"), format!("{flagged:?}"));
}

#[test]
fn schedulers_stay_bit_identical_with_wakeup_features_on() {
    // The two-scheduler contract extends to the new feature gates.
    let limits = SimLimits::insts(6_000);
    let program = generate(Benchmark::Gcc, 42);
    for cfg in [
        ProcessorConfig::gals_equal_1ghz(7).with_wakeup_filter(true),
        ProcessorConfig::pausible_equal_1ghz(7).with_wakeup_coalescing(true),
        ProcessorConfig::pausible_equal_1ghz(7)
            .with_wakeup_filter(true)
            .with_wakeup_coalescing(true),
    ] {
        let fast = simulate(&program, cfg.clone(), limits).expect("simulation failed");
        let oracle =
            simulate_with_engine(&program, cfg.clone(), limits).expect("simulation failed");
        assert_eq!(
            format!("{fast:?}"),
            format!("{oracle:?}"),
            "scheduler divergence with features on {:?}",
            cfg.clocking
        );
    }
}

#[test]
fn gals_raises_slip_and_misspeculation() {
    let program = generate(Benchmark::Gcc, 2);
    let base =
        simulate(&program, ProcessorConfig::synchronous_1ghz(), LIMITS).expect("simulation failed");
    let gals =
        simulate(&program, ProcessorConfig::gals_equal_1ghz(1), LIMITS).expect("simulation failed");
    assert!(
        gals.mean_slip() > base.mean_slip(),
        "slip must grow (Fig 6)"
    );
    assert!(
        gals.misspeculation_rate() > base.misspeculation_rate(),
        "longer recovery pipeline must raise mis-speculation (Fig 8)"
    );
}

#[test]
fn gals_average_power_is_lower() {
    let program = generate(Benchmark::Perl, 2);
    let base =
        simulate(&program, ProcessorConfig::synchronous_1ghz(), LIMITS).expect("simulation failed");
    let gals =
        simulate(&program, ProcessorConfig::gals_equal_1ghz(1), LIMITS).expect("simulation failed");
    assert!(
        gals.relative_power(&base) < 1.0,
        "per-cycle power drops without the global grid (Fig 9)"
    );
    assert_eq!(
        gals.energy.global_clock, 0.0,
        "GALS has no global grid energy"
    );
    assert!(base.energy.global_clock > 0.0);
}

#[test]
fn fifo_energy_appears_only_in_gals() {
    use gals::power::MacroBlock;
    let program = generate(Benchmark::Li, 2);
    let base =
        simulate(&program, ProcessorConfig::synchronous_1ghz(), LIMITS).expect("simulation failed");
    let gals =
        simulate(&program, ProcessorConfig::gals_equal_1ghz(1), LIMITS).expect("simulation failed");
    assert_eq!(base.energy.block(MacroBlock::Fifos), 0.0);
    assert!(gals.energy.block(MacroBlock::Fifos) > 0.0);
}

#[test]
fn slowing_an_idle_fp_domain_saves_energy_cheaply() {
    // perl has (virtually) no FP work: slowing the FP domain 3x must cost
    // almost nothing in time but save energy (paper section 5.2).
    let program = generate(Benchmark::Perl, 2);
    let gals =
        simulate(&program, ProcessorConfig::gals_equal_1ghz(1), LIMITS).expect("simulation failed");
    let plan = DvfsPlan::nominal().with_slowdown(Domain::FpCluster, 3.0);
    let scaled_cfg = ProcessorConfig::gals_equal_1ghz(1).with_dvfs(plan);
    let scaled = simulate(&program, scaled_cfg, LIMITS).expect("simulation failed");
    let slowdown = scaled.exec_time.as_fs() as f64 / gals.exec_time.as_fs() as f64;
    assert!(slowdown < 1.05, "idle-domain slowdown cost {slowdown}");
    assert!(
        scaled.total_energy() < gals.total_energy(),
        "voltage-scaled idle domain must save energy"
    );
}

#[test]
fn slowing_the_integer_domain_hurts_integer_code() {
    let program = generate(Benchmark::Gcc, 2);
    let gals =
        simulate(&program, ProcessorConfig::gals_equal_1ghz(1), LIMITS).expect("simulation failed");
    let plan = DvfsPlan::nominal().with_slowdown(Domain::IntCluster, 2.0);
    let cfg = ProcessorConfig::gals_equal_1ghz(1).with_dvfs(plan);
    let slowed = simulate(&program, cfg, LIMITS).expect("simulation failed");
    let slowdown = slowed.exec_time.as_fs() as f64 / gals.exec_time.as_fs() as f64;
    assert!(
        slowdown > 1.1,
        "halving the integer cluster's clock must hurt gcc ({slowdown})"
    );
}

#[test]
fn uniformly_slowed_base_scales_time_linearly() {
    let program = generate(Benchmark::Mpeg2, 2);
    let base =
        simulate(&program, ProcessorConfig::synchronous_1ghz(), LIMITS).expect("simulation failed");
    let mut plan = DvfsPlan::nominal();
    plan.slowdown = [1.5; 5];
    let cfg = ProcessorConfig::synchronous_1ghz().with_dvfs(plan);
    let slowed = simulate(&program, cfg, LIMITS).expect("simulation failed");
    let ratio = slowed.exec_time.as_fs() as f64 / base.exec_time.as_fs() as f64;
    assert!(
        (ratio - 1.5).abs() < 0.01,
        "uniform slowdown must scale execution time by the factor ({ratio})"
    );
    assert!(
        slowed.total_energy() < base.total_energy(),
        "ideal voltage scaling must save energy"
    );
}

#[test]
fn phase_variation_is_small_but_nonzero() {
    let program = generate(Benchmark::Ijpeg, 2);
    let mut times = Vec::new();
    for seed in 1..=5 {
        let r = simulate(&program, ProcessorConfig::gals_equal_1ghz(seed), LIMITS)
            .expect("simulation failed");
        times.push(r.exec_time.as_fs());
    }
    let max = *times.iter().max().expect("non-empty");
    let min = *times.iter().min().expect("non-empty");
    assert!(max > min, "different phases must perturb timing");
    let spread = (max - min) as f64 / min as f64;
    // Short runs see a few percent; full-length runs land near the
    // paper's ~0.5% (see the phase_sensitivity binary).
    assert!(
        spread < 0.10,
        "phase-induced variation should be small ({spread})"
    );
}

#[test]
fn wrong_path_instructions_never_commit() {
    // A coin-flip branch stresses recovery; committed count must still be
    // exactly the architectural prefix.
    let program = micro::random_branches(3_000);
    let r = simulate(
        &program,
        ProcessorConfig::gals_equal_1ghz(3),
        SimLimits::insts(8_000),
    )
    .expect("simulation failed");
    assert_eq!(r.committed, 8_000);
    assert!(
        r.wrong_path_fetched > 0,
        "coin-flip branches must cause wrong-path fetch"
    );
}

#[test]
fn cross_cluster_chains_run_on_all_three_clusters() {
    let program = micro::cross_cluster(2_000);
    let r = simulate(
        &program,
        ProcessorConfig::gals_equal_1ghz(1),
        SimLimits::insts(10_000),
    )
    .expect("simulation failed");
    assert_eq!(r.committed, 10_000);
    for (i, iq) in r.iq.iter().enumerate() {
        assert!(iq.issued > 0, "cluster {i} must issue instructions");
    }
}

#[test]
fn clocking_accessors_are_consistent() {
    let cfg = ProcessorConfig::gals_equal_1ghz(9);
    if let Clocking::Gals(clocks) = &cfg.clocking {
        for d in Domain::ALL {
            assert_eq!(cfg.clocking.domain_clock(d), clocks[d.index()]);
        }
    } else {
        panic!("gals_equal_1ghz must build a GALS clocking");
    }
}
